"""Unit tests for the columnar trace backend and trusted fast paths."""

import pytest

from repro.common.destset import DestinationSet
from repro.common.types import AccessType
from repro.trace import Trace, TraceRecord, read_trace, write_trace

from tests.conftest import gets, getx, make_trace


class TestColumnarBackend:
    def test_columns_mirror_records(self):
        records = [
            TraceRecord(0x1240, 0xF00, 2, AccessType.GETS, 17),
            TraceRecord(0x1280, 0xF04, 3, AccessType.GETX, 5),
        ]
        trace = make_trace(records)
        assert list(trace.addresses) == [0x1240, 0x1280]
        assert list(trace.pcs) == [0xF00, 0xF04]
        assert list(trace.requesters) == [2, 3]
        assert list(trace.accesses) == [0, 1]
        assert list(trace.instructions) == [17, 5]
        assert list(trace) == records

    def test_block_keys_cached_per_trace(self):
        trace = make_trace([gets(0x1244, 0), getx(0x4001, 1)])
        keys = trace.block_keys(64)
        assert list(keys) == [0x1240, 0x4000]
        assert trace.block_keys(64) is keys  # computed once
        assert list(trace.macroblock_keys(1024)) == [0x1000, 0x4000]

    def test_append_invalidates_key_cache(self):
        trace = make_trace([gets(0x40, 0)])
        assert list(trace.block_keys(64)) == [0x40]
        trace.append(gets(0x81, 1))
        assert list(trace.block_keys(64)) == [0x40, 0x80]

    def test_append_fields_is_trusted(self):
        trace = make_trace([])
        trace.append_fields(0x40, 0x10, 1, 1, 9)
        record = trace[0]
        assert record == TraceRecord(0x40, 0x10, 1, AccessType.GETX, 9)

    def test_slices_share_no_state(self):
        trace = make_trace([gets(64 * i, i % 4) for i in range(8)])
        head, tail = trace.split_warmup(3)
        head.append(getx(0x4000, 1))
        assert len(trace) == 8 and len(tail) == 5

    def test_records_materialized_lazily_are_real_records(self):
        trace = make_trace([gets(0x40, 0)])
        record = trace[0]
        assert isinstance(record, TraceRecord)
        assert record.block(64) == 0x40
        with pytest.raises(Exception):
            record.address = 1  # still frozen


class TestTrustedRecord:
    def test_trusted_skips_validation(self):
        # Internal fast path: no range checks on purpose.
        record = TraceRecord.trusted(-1, 0, 0, AccessType.GETS)
        assert record.address == -1

    def test_trusted_equals_checked(self):
        assert TraceRecord.trusted(
            0x40, 0x10, 1, AccessType.GETX, 3
        ) == TraceRecord(0x40, 0x10, 1, AccessType.GETX, 3)


class TestTrustedIo:
    def test_trusted_read_skips_validation(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text(
            "# repro-trace v1 n_processors=2 name=-\n40 10 9 GETS 5\n"
        )
        # Requester 9 is out of range: rejected by default...
        with pytest.raises(ValueError):
            read_trace(path)
        # ...but accepted on the trusted (cache) load path.
        loaded = read_trace(path, trusted=True)
        assert loaded[0].requester == 9

    def test_untrusted_read_rejects_bad_access_kind(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text(
            "# repro-trace v1 n_processors=2 name=-\n40 10 1 PUTS 5\n"
        )
        with pytest.raises(ValueError):
            read_trace(path)

    def test_round_trip_preserves_columns(self, tmp_path):
        trace = make_trace(
            [gets(0x1240, 2, pc=0xF00), getx(0x1280, 3, pc=0xF04)],
            name="demo",
        )
        path = tmp_path / "t.trace"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert list(loaded.addresses) == list(trace.addresses)
        assert list(loaded.accesses) == list(trace.accesses)


class TestDestinationSetInterning:
    def test_empty_and_broadcast_interned_per_n_nodes(self):
        assert DestinationSet.empty(16) is DestinationSet.empty(16)
        assert DestinationSet.broadcast(16) is DestinationSet.broadcast(16)
        assert DestinationSet.empty(8) is not DestinationSet.empty(16)

    def test_singletons_interned(self):
        assert DestinationSet.of(16, 3) is DestinationSet.of(16, 3)

    def test_algebra_returns_interned_extremes(self):
        a = DestinationSet.of(16, 1, 2)
        assert (a - a) is DestinationSet.empty(16)
        b = DestinationSet.broadcast(16)
        assert (a | b) is DestinationSet.broadcast(16)

    def test_count_uses_popcount(self):
        assert DestinationSet(16, 0b1011).count() == 3
        assert len(DestinationSet(16, 0b1011)) == 3


class TestDerivedColumnBackends:
    """numpy-vectorized and pure-Python column builders agree exactly."""

    @pytest.fixture
    def sample(self):
        records = []
        for i in range(200):
            record = (gets if i % 3 else getx)(
                0x1000 + 67 * i, i % 4, pc=0x400 + 8 * (i % 11)
            )
            records.append(record)
        return make_trace(records)

    def _backends(self):
        from repro.trace import columns

        names = ["python"]
        try:
            import numpy  # noqa: F401
        except ImportError:
            pass
        else:
            names.append("numpy")
        return columns, names

    def test_backends_produce_identical_columns(self, sample):
        columns, names = self._backends()
        built = {}
        for name in names:
            columns.set_backend(name)
            try:
                fresh = sample[:]
                built[name] = (
                    fresh.derived_columns(64, 4, 1024, False),
                    list(fresh.block_keys(64)),
                    fresh.boxed_columns(),
                )
            finally:
                columns.set_backend("auto")
        reference = built[names[0]]
        for name in names[1:]:
            assert built[name] == reference

    def test_derived_columns_contents(self, sample):
        derived = sample.derived_columns(64, 4, 1024, False)
        for i, (address, requester) in enumerate(
            zip(sample.addresses, sample.requesters)
        ):
            assert derived.blocks[i] == address & ~63
            assert derived.keys[i] == address // 1024
            home = ((address & ~63) >> 6) % 4
            assert derived.homes[i] == home
            assert derived.reqbits[i] == 1 << requester
            assert derived.notreqs[i] == ~(1 << requester)
            assert derived.minimals[i] == (1 << requester) | (1 << home)

    def test_pc_index_keys_use_pc_column(self, sample):
        derived = sample.derived_columns(64, 4, 1024, True)
        assert derived.keys == list(sample.pcs)

    def test_derived_columns_cached_per_config(self, sample):
        first = sample.derived_columns(64, 4, 1024, False)
        assert sample.derived_columns(64, 4, 1024, False) is first
        other = sample.derived_columns(64, 4, 64, False)
        assert other is not first

    def test_append_invalidates_derived_cache(self, sample):
        before = sample.derived_columns(64, 4, 1024, False)
        sample.append(gets(0x9000, 1))
        after = sample.derived_columns(64, 4, 1024, False)
        assert after is not before
        assert len(after.blocks) == len(before.blocks) + 1

    def test_split_warmup_memoized(self, sample):
        warmup, measured = sample.split_warmup(50)
        again = sample.split_warmup(50)
        assert again[0] is warmup and again[1] is measured
        assert len(warmup) == 50
        assert len(measured) == len(sample) - 50

    def test_set_backend_rejects_unknown(self):
        columns, _ = self._backends()
        with pytest.raises(ValueError, match="unknown backend"):
            columns.set_backend("fortran")

    def test_wide_systems_fall_back_to_python_masks(self, sample):
        # 100 nodes cannot be built with int64 numpy lanes; the mask
        # columns must still come out right via the pure path.
        trace = make_trace(
            [gets(0x40 + 64 * i, i) for i in range(100)],
            n_processors=100,
        )
        derived = trace.derived_columns(64, 100, 1024, False)
        for i in range(100):
            assert derived.reqbits[i] == 1 << i


class TestBinaryTraceFormat:
    def test_round_trip(self, tmp_path):
        from repro.trace.io import read_trace_binary, write_trace_binary

        trace = make_trace(
            [gets(0x1240, 2, pc=0xF00), getx(0x4000, 3, pc=0xF04)]
        )
        path = tmp_path / "t.bin"
        write_trace_binary(trace, path)
        loaded = read_trace_binary(path)
        assert list(loaded) == list(trace)
        assert loaded.n_processors == trace.n_processors
        assert loaded.name == trace.name

    def test_rejects_garbage(self, tmp_path):
        from repro.trace.io import read_trace_binary

        path = tmp_path / "bad.bin"
        path.write_bytes(b"not a trace")
        with pytest.raises(ValueError, match="not a binary"):
            read_trace_binary(path)

    def test_rejects_truncation(self, tmp_path):
        from repro.trace.io import read_trace_binary, write_trace_binary

        trace = make_trace([gets(0x40, 0), getx(0x80, 1)])
        path = tmp_path / "t.bin"
        write_trace_binary(trace, path)
        path.write_bytes(path.read_bytes()[:-4])
        with pytest.raises(ValueError, match="truncated"):
            read_trace_binary(path)

    def test_cache_prefers_binary_but_survives_without(self, tmp_path):
        from repro.experiment import PersistentTraceCorpus

        corpus = PersistentTraceCorpus(cache_dir=tmp_path)
        first = corpus.collect("ocean", 1500, seed=3)
        # Remove the binary sidecar: the text fallback must still hit.
        for path in tmp_path.glob("*.bin"):
            path.unlink()
        warm = PersistentTraceCorpus(cache_dir=tmp_path)
        second = warm.collect("ocean", 1500, seed=3)
        assert warm.cache_stats.hits == 1
        assert list(second.trace) == list(first.trace)
