"""Unit tests for the L1/L2 hierarchy."""

from repro.cache.hierarchy import CacheHierarchy
from repro.common.params import SystemConfig

KB = 1024


def make_hierarchy():
    config = SystemConfig(
        n_processors=4, l1d_size=1 * KB, l1i_size=1 * KB, l2_size=4 * KB
    )
    return CacheHierarchy(config)


class TestHierarchy:
    def test_miss_then_fill_then_hit(self):
        h = make_hierarchy()
        assert not h.access(0x40)
        h.fill(0x40)
        assert h.access(0x40)

    def test_l2_hit_refills_l1(self):
        h = make_hierarchy()
        h.fill(0x40)
        h.l1.invalidate(0x40)
        assert not h.l1.probe(0x40)
        assert h.access(0x40)  # L2 hit
        assert h.l1.probe(0x40)  # refilled

    def test_invalidate_clears_both_levels(self):
        h = make_hierarchy()
        h.fill(0x40)
        assert h.invalidate(0x40)
        assert not h.lookup(0x40)
        assert not h.invalidate(0x40)

    def test_inclusion_on_l2_eviction(self):
        h = make_hierarchy()
        # L2: 4 KB 4-way, 64 B blocks -> 16 sets... fill one set over.
        set_stride = h.l2.n_sets * 64
        addresses = [i * set_stride for i in range(5)]
        evicted = []
        for address in addresses:
            evicted += h.fill(address)
        assert evicted == [addresses[0]]
        # Inclusion: the evicted block is gone from L1 too.
        assert not h.l1.probe(addresses[0])
        assert not h.lookup(addresses[0])

    def test_fill_returns_only_l2_victims(self):
        h = make_hierarchy()
        # L1 is 1 KB (16 blocks), L2 64 blocks: overflow L1 only.
        evicted = []
        for i in range(20):
            evicted += h.fill(i * 64)
        assert evicted == []  # L1 victims stay resident in L2

    def test_lookup_does_not_disturb_lru(self):
        h = make_hierarchy()
        h.fill(0x40)
        before = h.l1.occupied_blocks(), h.l2.occupied_blocks()
        h.lookup(0x40)
        after = h.l1.occupied_blocks(), h.l2.occupied_blocks()
        assert before == after
