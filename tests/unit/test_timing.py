"""Unit tests for the interconnect, processor models, and simulator."""

import pytest

from repro.common.params import SystemConfig
from repro.protocols.directory import DirectoryProtocol
from repro.protocols.snooping import BroadcastSnoopingProtocol
from repro.timing.interconnect import CrossbarInterconnect
from repro.timing.processor import (
    DetailedProcessorModel,
    SimpleProcessorModel,
)
from repro.timing.system import TimingSimulator

from tests.conftest import gets, getx, make_trace


class TestInterconnect:
    def test_idle_link_only_serializes(self, config4):
        crossbar = CrossbarInterconnect(config4)
        delay = crossbar.acquire(0, ready_ns=100.0, n_bytes=100)
        assert delay == pytest.approx(10.0)  # 100 B / 10 B-per-ns

    def test_busy_link_queues(self, config4):
        crossbar = CrossbarInterconnect(config4)
        crossbar.acquire(0, 0.0, 1000)  # busy until 100 ns
        delay = crossbar.acquire(0, 50.0, 100)
        assert delay == pytest.approx(50.0 + 10.0)
        assert crossbar.total_queue_ns == pytest.approx(50.0)

    def test_links_are_independent(self, config4):
        crossbar = CrossbarInterconnect(config4)
        crossbar.acquire(0, 0.0, 10_000)
        delay = crossbar.acquire(1, 0.0, 100)
        assert delay == pytest.approx(10.0)

    def test_broadcast_loads_all_links(self, config4):
        crossbar = CrossbarInterconnect(config4)
        crossbar.load_broadcast(0.0, 80)
        for node in range(config4.n_processors):
            assert crossbar.link_free_at(node) == pytest.approx(8.0)

    def test_bytes_accounted(self, config4):
        crossbar = CrossbarInterconnect(config4)
        crossbar.acquire(0, 0.0, 100)
        crossbar.load_broadcast(0.0, 10)
        assert crossbar.bytes_carried == 100 + 10 * config4.n_processors


class TestProcessorModels:
    def test_simple_blocks_on_miss(self):
        cpu = SimpleProcessorModel()
        cpu.compute(400)  # 100 ns at 4 instr/ns
        assert cpu.issue_miss() == pytest.approx(100.0)
        cpu.complete_miss(300.0)
        assert cpu.now_ns == pytest.approx(300.0)
        assert cpu.finish_time() == pytest.approx(300.0)

    def test_detailed_overlaps_misses(self):
        cpu = DetailedProcessorModel(max_outstanding=2)
        first = cpu.issue_miss()
        cpu.complete_miss(first + 100.0)
        second = cpu.issue_miss()
        cpu.complete_miss(second + 100.0)
        # Two in flight: the third must wait for the first to drain.
        third = cpu.issue_miss()
        assert third == pytest.approx(100.0)

    def test_detailed_finish_includes_in_flight(self):
        cpu = DetailedProcessorModel(max_outstanding=4)
        cpu.complete_miss(500.0)
        assert cpu.finish_time() == pytest.approx(500.0)

    def test_detailed_reduces_runtime_vs_simple(self):
        def run(cpu):
            for _ in range(10):
                cpu.compute(40)
                issue = cpu.issue_miss()
                cpu.complete_miss(issue + 200.0)
            return cpu.finish_time()

        simple_time = run(SimpleProcessorModel())
        detailed_time = run(DetailedProcessorModel(max_outstanding=4))
        assert detailed_time < simple_time

    def test_rejects_bad_mlp(self):
        with pytest.raises(ValueError):
            DetailedProcessorModel(max_outstanding=0)


class TestTimingSimulator:
    def make_trace(self):
        records = []
        for i in range(40):
            node = i % 4
            records.append(getx(0x40, node, pc=0x10))
        for record in records:
            object.__setattr__(record, "instructions", 100)
        return make_trace(records)

    def test_runtime_positive_and_miss_counted(self, config4):
        simulator = TimingSimulator(config4, DirectoryProtocol(config4))
        result = simulator.run(self.make_trace(), warmup_fraction=0.25)
        assert result.runtime_ns > 0
        assert result.misses == 30  # 75% of 40

    def test_snooping_faster_than_directory_on_sharing(self, config4):
        trace = self.make_trace()
        directory = TimingSimulator(
            config4, DirectoryProtocol(config4)
        ).run(trace)
        snooping = TimingSimulator(
            config4, BroadcastSnoopingProtocol(config4)
        ).run(trace)
        assert snooping.runtime_ns < directory.runtime_ns

    def test_detailed_model_not_slower(self, config4):
        trace = self.make_trace()
        simple = TimingSimulator(
            config4, DirectoryProtocol(config4), processor_model="simple"
        ).run(trace)
        detailed = TimingSimulator(
            config4, DirectoryProtocol(config4), processor_model="detailed"
        ).run(trace)
        assert detailed.runtime_ns <= simple.runtime_ns + 1e-6

    def test_unknown_processor_model_rejected(self, config4):
        with pytest.raises(ValueError):
            TimingSimulator(
                config4, DirectoryProtocol(config4),
                processor_model="quantum",
            )

    def test_traffic_per_miss_reported(self, config4):
        simulator = TimingSimulator(
            config4, BroadcastSnoopingProtocol(config4)
        )
        result = simulator.run(self.make_trace())
        assert result.traffic_bytes_per_miss == pytest.approx(
            (config4.n_processors - 1) * 8 + 72
        )
