"""Unit tests for the interconnect, processor models, and simulator."""

import dataclasses

import pytest

from repro.common.params import SystemConfig
from repro.evaluation.runtime import make_protocol
from repro.protocols.directory import DirectoryProtocol
from repro.protocols.snooping import BroadcastSnoopingProtocol
from repro.timing.interconnect import CrossbarInterconnect
from repro.timing.processor import (
    DetailedProcessorModel,
    SimpleProcessorModel,
)
from repro.timing.registry import INTERCONNECT_NAMES
from repro.timing.system import TimingSimulator
from repro.workloads import create_workload

from tests.conftest import gets, getx, make_trace


class TestInterconnect:
    def test_idle_link_only_serializes(self, config4):
        crossbar = CrossbarInterconnect(config4)
        delay = crossbar.acquire(0, ready_ns=100.0, n_bytes=100)
        assert delay == pytest.approx(10.0)  # 100 B / 10 B-per-ns

    def test_busy_link_queues(self, config4):
        crossbar = CrossbarInterconnect(config4)
        crossbar.acquire(0, 0.0, 1000)  # busy until 100 ns
        delay = crossbar.acquire(0, 50.0, 100)
        assert delay == pytest.approx(50.0 + 10.0)
        assert crossbar.total_queue_ns == pytest.approx(50.0)

    def test_links_are_independent(self, config4):
        crossbar = CrossbarInterconnect(config4)
        crossbar.acquire(0, 0.0, 10_000)
        delay = crossbar.acquire(1, 0.0, 100)
        assert delay == pytest.approx(10.0)

    def test_broadcast_loads_all_links(self, config4):
        crossbar = CrossbarInterconnect(config4)
        crossbar.load_broadcast(0.0, 80)
        for node in range(config4.n_processors):
            assert crossbar.link_free_at(node) == pytest.approx(8.0)

    def test_bytes_accounted(self, config4):
        crossbar = CrossbarInterconnect(config4)
        crossbar.acquire(0, 0.0, 100)
        crossbar.load_broadcast(0.0, 10)
        assert crossbar.bytes_carried == 100 + 10 * config4.n_processors


class TestProcessorModels:
    def test_simple_blocks_on_miss(self):
        cpu = SimpleProcessorModel()
        cpu.compute(400)  # 100 ns at 4 instr/ns
        assert cpu.issue_miss() == pytest.approx(100.0)
        cpu.complete_miss(300.0)
        assert cpu.now_ns == pytest.approx(300.0)
        assert cpu.finish_time() == pytest.approx(300.0)

    def test_detailed_overlaps_misses(self):
        cpu = DetailedProcessorModel(max_outstanding=2)
        first = cpu.issue_miss()
        cpu.complete_miss(first + 100.0)
        second = cpu.issue_miss()
        cpu.complete_miss(second + 100.0)
        # Two in flight: the third must wait for the first to drain.
        third = cpu.issue_miss()
        assert third == pytest.approx(100.0)

    def test_detailed_finish_includes_in_flight(self):
        cpu = DetailedProcessorModel(max_outstanding=4)
        cpu.complete_miss(500.0)
        assert cpu.finish_time() == pytest.approx(500.0)

    def test_detailed_reduces_runtime_vs_simple(self):
        def run(cpu):
            for _ in range(10):
                cpu.compute(40)
                issue = cpu.issue_miss()
                cpu.complete_miss(issue + 200.0)
            return cpu.finish_time()

        simple_time = run(SimpleProcessorModel())
        detailed_time = run(DetailedProcessorModel(max_outstanding=4))
        assert detailed_time < simple_time

    def test_rejects_bad_mlp(self):
        with pytest.raises(ValueError):
            DetailedProcessorModel(max_outstanding=0)


class TestTimingSimulator:
    def make_trace(self):
        records = []
        for i in range(40):
            node = i % 4
            records.append(getx(0x40, node, pc=0x10))
        for record in records:
            object.__setattr__(record, "instructions", 100)
        return make_trace(records)

    @pytest.mark.parametrize("kind", INTERCONNECT_NAMES)
    def test_runtime_positive_and_miss_counted(self, config4, kind):
        config = dataclasses.replace(config4, interconnect=kind)
        simulator = TimingSimulator(config, DirectoryProtocol(config))
        result = simulator.run(self.make_trace(), warmup_fraction=0.25)
        assert result.runtime_ns > 0
        assert result.misses == 30  # 75% of 40

    def test_snooping_faster_than_directory_on_sharing(self, config4):
        trace = self.make_trace()
        directory = TimingSimulator(
            config4, DirectoryProtocol(config4)
        ).run(trace)
        snooping = TimingSimulator(
            config4, BroadcastSnoopingProtocol(config4)
        ).run(trace)
        assert snooping.runtime_ns < directory.runtime_ns

    def test_detailed_model_not_slower(self, config4):
        trace = self.make_trace()
        simple = TimingSimulator(
            config4, DirectoryProtocol(config4), processor_model="simple"
        ).run(trace)
        detailed = TimingSimulator(
            config4, DirectoryProtocol(config4), processor_model="detailed"
        ).run(trace)
        assert detailed.runtime_ns <= simple.runtime_ns + 1e-6

    def test_unknown_processor_model_rejected(self, config4):
        with pytest.raises(ValueError):
            TimingSimulator(
                config4, DirectoryProtocol(config4),
                processor_model="quantum",
            )

    def test_traffic_per_miss_reported(self, config4):
        simulator = TimingSimulator(
            config4, BroadcastSnoopingProtocol(config4)
        )
        result = simulator.run(self.make_trace())
        assert result.traffic_bytes_per_miss == pytest.approx(
            (config4.n_processors - 1) * 8 + 72
        )


#: Exact pre-refactor ``RuntimeResult`` values (hex floats, so the
#: comparison is bit-for-bit), captured at the commit preceding the
#: pluggable-interconnect layer: barnes-hut, seed 7, 4000 references,
#: default 16-node Table 4 config.  The default crossbar path must
#: keep reproducing them byte-identically.
PRE_REFACTOR_GOLDEN = {
    "directory": {
        "runtime_ns": "0x1.733f800000000p+16",
        "misses": 2612,
        "traffic_bytes": 213040,
        "indirection_pct": "0x1.47b7dd80322e4p+4",
        "average_latency_ns": "0x1.7aa82f0b5e7b2p+7",
        "queue_ns_per_miss": "0x0.0p+0",
    },
    "broadcast-snooping": {
        "runtime_ns": "0x1.6813800000000p+16",
        "misses": 2612,
        "traffic_bytes": 501504,
        "indirection_pct": "0x0.0p+0",
        "average_latency_ns": "0x1.53899adac1aa9p+7",
        "queue_ns_per_miss": "0x0.0p+0",
    },
    "owner-group": {
        "runtime_ns": "0x1.77d3800000000p+16",
        "misses": 2612,
        "traffic_bytes": 218544,
        "indirection_pct": "0x1.19c6c33bfb4bbp+4",
        "average_latency_ns": "0x1.7a815f43d2861p+7",
        "queue_ns_per_miss": "0x0.0p+0",
    },
    "group": {
        "runtime_ns": "0x1.7751800000000p+16",
        "misses": 2612,
        "traffic_bytes": 219224,
        "indirection_pct": "0x1.1b00645c854aep+4",
        "average_latency_ns": "0x1.7ab4563f828c6p+7",
        "queue_ns_per_miss": "0x0.0p+0",
    },
}

#: Same capture at a constrained 0.25 bytes/ns link bandwidth, so the
#: identity contract also covers the serialization-dominated regime.
PRE_REFACTOR_GOLDEN_CONSTRAINED = {
    "broadcast-snooping": "0x1.7b80600000000p+17",
    "owner-group": "0x1.d717800000000p+16",
}


@pytest.fixture(scope="module")
def golden_trace():
    return create_workload("barnes-hut", seed=7).collect(4000).trace


class TestDefaultCrossbarIdentity:
    """The default interconnect reproduces pre-refactor results exactly."""

    @pytest.mark.parametrize("label", sorted(PRE_REFACTOR_GOLDEN))
    @pytest.mark.parametrize("columnar", (True, False))
    def test_byte_identical_to_pre_refactor(
        self, golden_trace, label, columnar
    ):
        config = SystemConfig()
        simulator = TimingSimulator(
            config, make_protocol(label, config)
        )
        result = simulator.run(golden_trace, columnar=columnar)
        expected = PRE_REFACTOR_GOLDEN[label]
        assert result.runtime_ns.hex() == expected["runtime_ns"]
        assert result.misses == expected["misses"]
        assert result.traffic_bytes == expected["traffic_bytes"]
        assert result.indirection_pct.hex() == expected["indirection_pct"]
        assert (
            result.average_latency_ns.hex()
            == expected["average_latency_ns"]
        )
        assert (
            result.queue_ns_per_miss.hex()
            == expected["queue_ns_per_miss"]
        )

    @pytest.mark.parametrize(
        "label", sorted(PRE_REFACTOR_GOLDEN_CONSTRAINED)
    )
    def test_byte_identical_under_constrained_bandwidth(
        self, golden_trace, label
    ):
        config = SystemConfig(link_bandwidth_bytes_per_ns=0.25)
        simulator = TimingSimulator(
            config, make_protocol(label, config)
        )
        result = simulator.run(golden_trace)
        expected = PRE_REFACTOR_GOLDEN_CONSTRAINED[label]
        assert result.runtime_ns.hex() == expected
