"""Unit tests for the pluggable interconnect models and registry.

Covers per-model queueing/serialization edge cases, the broadcast
accounting contract, registry resolution/extension, central timing
validation, and record-loop vs. columnar-loop equivalence for every
registered model (the default crossbar's byte-identity to pre-refactor
results lives in ``test_timing.py``).
"""

import pytest

from repro.common.params import SystemConfig
from repro.evaluation.runtime import make_protocol
from repro.timing.interconnect import (
    CrossbarInterconnect,
    IdealInterconnect,
    Interconnect,
    RingInterconnect,
    TreeInterconnect,
)
from repro.timing.registry import (
    INTERCONNECT_NAMES,
    _REGISTRY,
    create_interconnect,
    interconnect_names,
    register_interconnect,
)
from repro.timing.system import TimingSimulator
from repro.workloads import create_workload


class TestRegistry:
    def test_builtin_names(self):
        assert INTERCONNECT_NAMES == ("crossbar", "tree", "ring", "ideal")
        assert set(INTERCONNECT_NAMES) <= set(interconnect_names())

    @pytest.mark.parametrize(
        "kind, cls",
        [
            ("crossbar", CrossbarInterconnect),
            ("tree", TreeInterconnect),
            ("ring", RingInterconnect),
            ("ideal", IdealInterconnect),
        ],
    )
    def test_create_resolves_kind(self, kind, cls):
        model = create_interconnect(SystemConfig(interconnect=kind))
        assert type(model) is cls
        assert model.kind == kind

    def test_default_config_is_crossbar(self):
        assert type(create_interconnect(SystemConfig())) is (
            CrossbarInterconnect
        )

    def test_unknown_kind_rejected_with_known_list(self):
        with pytest.raises(ValueError, match="known: crossbar"):
            create_interconnect(SystemConfig(interconnect="warp"))

    def test_register_extension_and_duplicate_rejection(self):
        class MeshInterconnect(IdealInterconnect):
            kind = "test-mesh"

        try:
            register_interconnect(MeshInterconnect)
            assert "test-mesh" in interconnect_names()
            model = create_interconnect(
                SystemConfig(interconnect="test-mesh")
            )
            assert type(model) is MeshInterconnect
            # Re-registering the same class is idempotent...
            register_interconnect(MeshInterconnect)

            class Imposter(IdealInterconnect):
                kind = "test-mesh"

            # ...but a different class under a taken kind is an error.
            with pytest.raises(ValueError, match="already registered"):
                register_interconnect(Imposter)
        finally:
            _REGISTRY.pop("test-mesh", None)

    def test_register_requires_kind(self):
        class Nameless(IdealInterconnect):
            kind = ""

        with pytest.raises(ValueError, match="kind"):
            register_interconnect(Nameless)


class TestTimingValidation:
    """Timing fields fail at config construction, not in the simulator."""

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_rejects_bad_bandwidth(self, bad):
        with pytest.raises(ValueError, match="link_bandwidth"):
            SystemConfig(link_bandwidth_bytes_per_ns=bad)

    @pytest.mark.parametrize("bad", [0.0, -2.5])
    def test_rejects_bad_hop_latency(self, bad):
        with pytest.raises(ValueError, match="hop_latency_ns"):
            SystemConfig(hop_latency_ns=bad)

    @pytest.mark.parametrize(
        "field", ["link_latency_ns", "l2_latency_ns", "memory_latency_ns"]
    )
    def test_rejects_negative_latencies(self, field):
        with pytest.raises(ValueError, match=field):
            SystemConfig(**{field: -1.0})

    def test_rejects_empty_interconnect_name(self):
        with pytest.raises(ValueError, match="interconnect"):
            SystemConfig(interconnect="")


class TestCrossbar:
    def test_broadcast_accumulates_queueing(self, config4):
        """A broadcast onto busy links charges the wait to the queue
        accounting, matching unicast ``acquire`` semantics."""
        crossbar = CrossbarInterconnect(config4)
        crossbar.acquire(0, 0.0, 1000)  # node 0 busy until 100 ns
        crossbar.load_broadcast(50.0, 80)
        # Only node 0's link was busy: 100 - 50 = 50 ns of queueing.
        assert crossbar.total_queue_ns == pytest.approx(50.0)
        assert crossbar.link_free_at(0) == pytest.approx(108.0)
        for node in range(1, config4.n_processors):
            assert crossbar.link_free_at(node) == pytest.approx(58.0)

    def test_broadcast_on_idle_links_queues_nothing(self, config4):
        crossbar = CrossbarInterconnect(config4)
        crossbar.load_broadcast(0.0, 80)
        assert crossbar.total_queue_ns == 0.0

    def test_queue_consistent_between_unicast_and_broadcast(self, config4):
        """The same busy-link wait costs the same through either path."""
        unicast = CrossbarInterconnect(config4)
        unicast.acquire(0, 0.0, 1000)
        unicast.acquire(0, 50.0, 80)
        broadcast = CrossbarInterconnect(config4)
        broadcast.acquire(0, 0.0, 1000)
        broadcast.load_broadcast(50.0, 80)
        assert unicast.total_queue_ns == broadcast.total_queue_ns


class TestIdeal:
    def test_never_delays_or_queues(self, config4):
        ideal = IdealInterconnect(config4)
        assert ideal.acquire(0, 0.0, 10**9) == 0.0
        assert ideal.acquire(0, 0.0, 10**9) == 0.0
        assert ideal.total_queue_ns == 0.0
        assert ideal.link_free_at(0) == 0.0

    def test_traffic_demand_still_counted(self, config4):
        ideal = IdealInterconnect(config4)
        ideal.acquire(1, 0.0, 100)
        ideal.load_broadcast(0.0, 10)
        assert ideal.bytes_carried == 100 + 10 * config4.n_processors


class TestPointToPoint:
    def test_tree_hop_counts(self):
        assert TreeInterconnect.hops(0, 1) == 0
        assert TreeInterconnect.hops(3, 4) == 2
        for node in range(16):
            assert TreeInterconnect.hops(node, 16) == 4

    def test_ring_hop_counts(self):
        # Ordering station at node 0; shorter way around.
        assert [RingInterconnect.hops(n, 4) for n in range(4)] == [
            0, 1, 2, 1,
        ]
        assert RingInterconnect.hops(8, 16) == 8

    def test_tree_idle_delay_is_hops_plus_serialization(self, config4):
        # 4 nodes -> 2 hops; default hop latency 6.25 ns; 100 B at
        # 10 B/ns serializes twice (leaf link, then the root switch).
        tree = TreeInterconnect(config4)
        delay = tree.acquire(0, 0.0, 100)
        assert delay == pytest.approx(10.0 + 12.5 + 10.0 + 12.5)
        assert tree.total_queue_ns == 0.0

    def test_default_16_node_tree_matches_crossbar_traversal(self):
        # ceil(log2(16)) = 4 hops at 6.25 ns: 25 ns up + 25 ns down ==
        # the crossbar's flat 50 ns link traversal.
        config = SystemConfig()
        tree = TreeInterconnect(config)
        delay = tree.acquire(5, 0.0, 0)
        assert delay == pytest.approx(config.link_latency_ns)

    def test_shared_ordering_point_queues_concurrent_senders(self, config4):
        tree = TreeInterconnect(config4)
        first = tree.acquire(0, 0.0, 100)
        second = tree.acquire(1, 0.0, 100)
        # Same leaf timing, but the second transaction finds the root
        # busy for 10 ns (the first one's serialization).
        assert second == pytest.approx(first + 10.0)
        assert tree.total_queue_ns == pytest.approx(10.0)

    def test_leaf_links_independent(self, config4):
        tree = TreeInterconnect(config4)
        tree.acquire(0, 0.0, 10_000)  # node 0's leaf busy for 1000 ns
        assert tree.link_free_at(0) == pytest.approx(1000.0)
        assert tree.link_free_at(1) == 0.0

    def test_ring_distance_asymmetry(self, config4):
        ring = RingInterconnect(config4)
        near = ring.acquire(0, 0.0, 0)   # 0 hops to the station
        far = RingInterconnect(config4).acquire(2, 0.0, 0)  # 2 hops
        assert near == pytest.approx(0.0)
        assert far == pytest.approx(2 * 2 * config4.hop_latency_ns)

    def test_broadcast_loads_leaves_and_ordering_point(self, config4):
        tree = TreeInterconnect(config4)
        tree.load_broadcast(0.0, 80)
        for node in range(config4.n_processors):
            assert tree.link_free_at(node) == pytest.approx(8.0)
        assert tree.ordering_point_free_ns == pytest.approx(8.0)
        assert tree.bytes_carried == 80 * config4.n_processors

    def test_hop_latency_config_knob(self, config4):
        import dataclasses

        slow = dataclasses.replace(config4, hop_latency_ns=100.0)
        delay = TreeInterconnect(slow).acquire(0, 0.0, 0)
        assert delay == pytest.approx(2 * 2 * 100.0)


@pytest.fixture(scope="module")
def small_trace():
    return create_workload("barnes-hut", seed=7).collect(4000).trace


class TestModelEquivalence:
    """Columnar two-pass timing == record-loop timing, per model."""

    @pytest.mark.parametrize("kind", INTERCONNECT_NAMES)
    @pytest.mark.parametrize("label", ("broadcast-snooping", "group"))
    def test_columnar_matches_records(self, small_trace, kind, label):
        config = SystemConfig(interconnect=kind)
        fast = TimingSimulator(config, make_protocol(label, config))
        slow = TimingSimulator(config, make_protocol(label, config))
        assert fast.run(small_trace) == slow.run(
            small_trace, columnar=False
        )

    @pytest.mark.parametrize("kind", INTERCONNECT_NAMES)
    def test_detailed_processor_columnar_matches_records(
        self, small_trace, kind
    ):
        config = SystemConfig(interconnect=kind)
        results = [
            TimingSimulator(
                config,
                make_protocol("owner-group", config),
                processor_model="detailed",
            ).run(small_trace, columnar=columnar)
            for columnar in (True, False)
        ]
        assert results[0] == results[1]

    def test_injected_instance_wins_over_config(self, small_trace):
        config = SystemConfig()
        injected = IdealInterconnect(config)
        simulator = TimingSimulator(
            config,
            make_protocol("directory", config),
            interconnect=injected,
        )
        simulator.run(small_trace)
        assert simulator.interconnect is injected
        assert injected.bytes_carried > 0

    def test_ideal_never_slower_than_finite_models(self, small_trace):
        runtimes = {}
        for kind in INTERCONNECT_NAMES:
            config = SystemConfig(
                interconnect=kind, link_bandwidth_bytes_per_ns=0.25
            )
            simulator = TimingSimulator(
                config, make_protocol("broadcast-snooping", config)
            )
            runtimes[kind] = simulator.run(small_trace).runtime_ns
        assert runtimes["ideal"] == min(runtimes.values())
