"""Unit tests for the v2 trace store and the zero-copy load path."""

import os
import random
import sys

import pytest

from repro.common.params import SystemConfig
from repro.experiment.cache import TraceCache, derived_config
from repro.trace import Trace
from repro.trace.io import (
    MMAP_ENV,
    _V2_ALIGNMENT,
    _V2_MAGIC,
    mmap_enabled,
    read_trace_binary,
    read_trace_v2,
    write_trace,
    write_trace_binary,
    write_trace_v2,
)

CONFIG = SystemConfig(n_processors=8)
DERIVED = derived_config(CONFIG)


def make_trace(records=4000, n_processors=8, seed=7, name="store"):
    rng = random.Random(seed)
    trace = Trace(n_processors=n_processors, name=name)
    for _ in range(records):
        trace.append_fields(
            rng.randrange(1 << 40),
            rng.randrange(1 << 30),
            rng.randrange(n_processors),
            rng.randrange(2),
            rng.randrange(100),
        )
    return trace


def columns(trace):
    return (
        list(trace.addresses),
        list(trace.pcs),
        list(trace.requesters),
        list(trace.accesses),
        list(trace.instructions),
    )


class TestV2RoundTrip:
    def test_round_trip_identity(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "t.bin2"
        write_trace_v2(trace, path, DERIVED)
        loaded = read_trace_v2(path)
        assert loaded.n_processors == trace.n_processors
        assert loaded.name == trace.name
        assert columns(loaded) == columns(trace)

    def test_write_is_deterministic(self, tmp_path):
        trace = make_trace()
        write_trace_v2(trace, tmp_path / "a.bin2", DERIVED)
        write_trace_v2(trace, tmp_path / "b.bin2", DERIVED)
        assert (
            (tmp_path / "a.bin2").read_bytes()
            == (tmp_path / "b.bin2").read_bytes()
        )

    def test_segments_are_64_byte_aligned(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "t.bin2"
        write_trace_v2(trace, path, DERIVED)
        import json

        data = path.read_bytes()
        header = json.loads(
            data[len(_V2_MAGIC): data.index(b"\n", len(_V2_MAGIC))]
        )
        assert header["segments"]
        for _, _, _, offset, _ in header["segments"]:
            assert offset % _V2_ALIGNMENT == 0

    def test_derived_store_matches_recompute(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "t.bin2"
        write_trace_v2(trace, path, DERIVED)
        loaded = read_trace_v2(path)
        args = (
            DERIVED["block_size"],
            DERIVED["n_processors"],
            DERIVED["index_granularity"],
            False,
        )
        assert loaded.derived_columns(*args) == trace.derived_columns(*args)
        assert list(loaded.block_keys(DERIVED["block_size"])) == list(
            trace.block_keys(DERIVED["block_size"])
        )
        assert list(
            loaded.block_keys(DERIVED["macroblock_size"])
        ) == list(trace.block_keys(DERIVED["macroblock_size"]))
        assert loaded.block_keys_list(
            DERIVED["block_size"]
        ) == trace.block_keys_list(DERIVED["block_size"])

    def test_off_config_recomputes(self, tmp_path):
        # A configuration the store did not persist falls back to the
        # normal per-trace computation, identical to a private trace.
        trace = make_trace()
        path = tmp_path / "t.bin2"
        write_trace_v2(trace, path, DERIVED)
        loaded = read_trace_v2(path)
        assert loaded.derived_columns(128, 4, 512, False) == (
            trace.derived_columns(128, 4, 512, False)
        )
        assert list(loaded.block_keys(32)) == list(trace.block_keys(32))

    def test_without_derived_block(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "t.bin2"
        write_trace_v2(trace, path)
        loaded = read_trace_v2(path)
        assert columns(loaded) == columns(trace)
        assert loaded.derived_columns(64, 8, 1024, False) == (
            trace.derived_columns(64, 8, 1024, False)
        )

    def test_wide_system_skips_derived(self, tmp_path):
        # 63+ node bitmasks do not fit an int64 segment: base columns
        # still persist, derived persistence is skipped.
        trace = make_trace(records=50, n_processors=100)
        derived = dict(DERIVED, n_processors=100)
        path = tmp_path / "t.bin2"
        write_trace_v2(trace, path, derived)
        loaded = read_trace_v2(path)
        assert columns(loaded) == columns(trace)
        assert loaded._derived_store is None

    def test_empty_trace(self, tmp_path):
        trace = Trace(n_processors=4, name="empty")
        path = tmp_path / "t.bin2"
        write_trace_v2(trace, path, DERIVED)
        loaded = read_trace_v2(path)
        assert len(loaded) == 0
        assert loaded.n_processors == 4


class TestV2Rejection:
    def _write(self, tmp_path, **kwargs):
        path = tmp_path / "t.bin2"
        write_trace_v2(make_trace(), path, DERIVED)
        return path

    def test_rejects_truncation(self, tmp_path):
        path = self._write(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-1])
        with pytest.raises(ValueError, match="truncated or torn"):
            read_trace_v2(path)

    def test_rejects_trailing_bytes(self, tmp_path):
        path = self._write(tmp_path)
        path.write_bytes(path.read_bytes() + b"\0")
        with pytest.raises(ValueError, match="truncated or torn"):
            read_trace_v2(path)

    def test_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "t.bin2"
        path.write_bytes(b"#not-a-trace\n")
        with pytest.raises(ValueError, match="not a v2"):
            read_trace_v2(path)

    def test_rejects_byteorder_mismatch(self, tmp_path):
        path = self._write(tmp_path)
        data = path.read_bytes()
        other = b"big" if sys.byteorder == "little" else b"little"
        swapped = data.replace(
            b'"byteorder": "%s"' % sys.byteorder.encode("ascii"),
            b'"byteorder": "%s"' % other,
            1,
        )
        assert swapped != data
        path.write_bytes(swapped)
        with pytest.raises(ValueError, match="byteorder"):
            read_trace_v2(path)

    def test_binary_v1_size_checked_up_front(self, tmp_path):
        # Satellite: read_trace_binary validates the header's layout
        # against one fstat instead of failing column-by-column.
        trace = make_trace()
        path = tmp_path / "t.bin"
        write_trace_binary(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="does not match"):
            read_trace_binary(path)
        path.write_bytes(data + b"x")
        with pytest.raises(ValueError, match="does not match"):
            read_trace_binary(path)


class TestFrozenSemantics:
    def _load(self, tmp_path, **kwargs):
        trace = make_trace(**kwargs)
        path = tmp_path / "t.bin2"
        write_trace_v2(trace, path, DERIVED)
        return trace, path, read_trace_v2(path)

    def test_loaded_trace_is_frozen(self, tmp_path):
        _, _, loaded = self._load(tmp_path)
        assert loaded.frozen

    def test_mutation_copies_never_writes_through(self, tmp_path):
        trace, path, loaded = self._load(tmp_path)
        before = path.read_bytes()
        loaded.append_fields(0x40, 0x10, 1, 0, 3)
        assert not loaded.frozen
        assert len(loaded) == len(trace) + 1
        assert path.read_bytes() == before
        # A fresh load still sees the original records.
        assert columns(read_trace_v2(path)) == columns(trace)

    def test_extend_fields_materializes(self, tmp_path):
        trace, path, loaded = self._load(tmp_path)
        loaded.extend_fields([1], [2], [3], [1], [4])
        assert not loaded.frozen
        assert len(loaded) == len(trace) + 1
        assert list(loaded.addresses)[:-1] == list(trace.addresses)

    def test_unit_slice_stays_frozen_and_correct(self, tmp_path):
        trace, _, loaded = self._load(tmp_path)
        warm, measured = loaded.split_warmup(100)
        assert warm.frozen and measured.frozen
        assert columns(warm) == tuple(c[:100] for c in columns(trace))
        assert list(measured.block_keys(64)) == list(
            trace.block_keys(64)
        )[100:]
        args = (64, 8, 1024, False)
        assert measured.derived_columns(*args) == (
            trace[100:].derived_columns(*args)
        )

    def test_strided_slice_materializes(self, tmp_path):
        trace, _, loaded = self._load(tmp_path)
        strided = loaded[::3]
        assert not strided.frozen
        assert list(strided.addresses) == list(trace.addresses)[::3]

    def test_replay_on_mapped_trace_matches_private(self, tmp_path):
        # End-to-end: the simulation result of a frozen mapped trace
        # is identical to the same trace replayed from private arrays.
        from repro.evaluation.runtime import make_protocol
        from repro.evaluation.tradeoff import evaluate_protocol

        trace, _, loaded = self._load(tmp_path, records=2000)
        results = []
        for candidate in (trace, loaded):
            protocol = make_protocol("group", CONFIG)
            results.append(
                evaluate_protocol(protocol, candidate, label="group")
            )
        assert results[0] == results[1]


class TestMmapEscapeHatch:
    def test_disabled_load_is_byte_identical(self, tmp_path, monkeypatch):
        trace = make_trace()
        path = tmp_path / "t.bin2"
        write_trace_v2(trace, path, DERIVED)
        mapped = read_trace_v2(path)
        monkeypatch.setenv(MMAP_ENV, "0")
        assert not mmap_enabled()
        copied = read_trace_v2(path)
        assert copied.frozen
        assert columns(copied) == columns(mapped)
        args = (64, 8, 1024, False)
        assert copied.derived_columns(*args) == (
            mapped.derived_columns(*args)
        )

    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv(MMAP_ENV, raising=False)
        assert mmap_enabled()
        monkeypatch.setenv(MMAP_ENV, "off")
        assert not mmap_enabled()
        monkeypatch.setenv(MMAP_ENV, "1")
        assert mmap_enabled()


class TestCacheFallbackChain:
    def _store(self, tmp_path):
        cache = TraceCache(tmp_path, derived=DERIVED)
        from repro.cache.pipeline import CollectionResult

        trace = make_trace()
        cache.store(
            "k", CollectionResult(trace=trace, instructions={}, references=1)
        )
        return cache, trace

    def test_load_prefers_v2(self, tmp_path):
        cache, trace = self._store(tmp_path)
        result = cache.load("k")
        assert result.trace.frozen  # came from the mapped v2 sidecar
        assert columns(result.trace) == columns(trace)

    def test_torn_v2_heals_from_binary(self, tmp_path):
        cache, trace = self._store(tmp_path)
        v2 = tmp_path / "k.bin2"
        good = v2.read_bytes()
        v2.write_bytes(good[: len(good) // 2])
        result = cache.load("k")
        assert result is not None
        assert columns(result.trace) == columns(trace)
        assert v2.read_bytes() == good  # healed byte-identically
        assert cache.load("k").trace.frozen

    def test_torn_v2_and_binary_heal_from_text(self, tmp_path):
        cache, trace = self._store(tmp_path)
        (tmp_path / "k.bin2").write_bytes(b"garbage")
        (tmp_path / "k.bin").write_bytes(b"garbage")
        result = cache.load("k")
        assert result is not None
        assert columns(result.trace) == columns(trace)
        # Both sidecars were healed; the next load maps the v2 file.
        assert cache.load("k").trace.frozen

    def test_missing_v2_healed_for_legacy_entry(self, tmp_path):
        # A corpus written before the v2 format (or shipped without
        # sidecars) grows a .bin2 on first load.
        cache, trace = self._store(tmp_path)
        (tmp_path / "k.bin2").unlink()
        result = cache.load("k")
        assert result is not None
        assert (tmp_path / "k.bin2").exists()
        assert cache.load("k").trace.frozen
