"""Unit tests for the unified experiment API."""

import dataclasses
import json

import pytest

from repro.common.params import PredictorConfig, SystemConfig
from repro.experiment import (
    ExperimentSpec,
    PersistentTraceCorpus,
    ResultRecord,
    ResultSet,
    Runner,
    TraceCache,
    bandwidth_sweep,
    run_experiment,
)

#: Small-but-nonempty settings shared by the runner tests.
SMALL = dict(n_references=2000, policies=("owner",))


class TestExperimentSpec:
    def test_json_round_trip(self):
        spec = ExperimentSpec(
            name="rt",
            kind="runtime",
            workloads=("oltp", "apache"),
            n_references=5000,
            seeds=(1, 2),
            policies=("owner", "group"),
            predictor_config=PredictorConfig(n_entries=None),
            system_config=SystemConfig(n_processors=8),
            processor_model="detailed",
        )
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.predictor_config.unbounded
        assert restored.system_config.n_processors == 8

    def test_from_dict_partial_configs(self):
        spec = ExperimentSpec.from_dict(
            {
                "workloads": ["ocean"],
                "predictor_config": {"n_entries": None},
                "system_config": {"n_processors": 4},
            }
        )
        assert spec.predictor_config.unbounded
        # Unnamed fields keep their defaults.
        assert spec.predictor_config.index_granularity == 1024
        assert spec.system_config.n_processors == 4
        assert spec.kind == "tradeoff"

    def test_sequences_normalized_to_tuples(self):
        spec = ExperimentSpec(
            workloads=["ocean"], seeds=[1], policies=["owner"]
        )
        assert spec.workloads == ("ocean",)
        assert spec.seeds == (1,)
        assert spec == ExperimentSpec(
            workloads=("ocean",), seeds=(1,), policies=("owner",)
        )

    def test_expand_cross_product(self):
        spec = ExperimentSpec(
            workloads=("ocean", "oltp"), seeds=(1, 2, 3)
        )
        jobs = spec.expand()
        # Per-label cells: 2 workloads x 3 seeds x (2 baselines + 4
        # paper policies).
        labels = ("directory", "broadcast-snooping") + spec.policies
        assert spec.n_jobs == len(jobs) == 6 * len(labels)
        assert [j.index for j in jobs] == list(range(len(jobs)))
        assert {(j.workload, j.seed, j.label) for j in jobs} == {
            (w, s, label)
            for w in ("ocean", "oltp")
            for s in (1, 2, 3)
            for label in labels
        }

    def test_expand_label_cells_by_kind(self):
        tradeoff = ExperimentSpec(
            workloads=("ocean",), policies=("owner",),
            include_baselines=False,
        )
        assert tradeoff.cell_labels() == ("owner",)
        # Runtime always carries its normalization baselines.
        runtime = ExperimentSpec(
            workloads=("ocean",), kind="runtime", policies=("owner",),
            include_baselines=False,
        )
        assert runtime.cell_labels() == (
            "directory", "broadcast-snooping", "owner",
        )
        accuracy = ExperimentSpec(
            workloads=("ocean",), kind="accuracy", policies=("owner",)
        )
        assert accuracy.cell_labels() == ("owner",)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(workloads=("nope",)), "unknown workload"),
            (dict(workloads=()), "at least one workload"),
            (dict(workloads=("ocean",), kind="nope"), "unknown kind"),
            (
                dict(workloads=("ocean",), policies=("nope",)),
                "unknown policy",
            ),
            (
                dict(workloads=("ocean",), n_references=0),
                "n_references",
            ),
            (
                dict(workloads=("ocean",), warmup_fraction=1.0),
                "warmup_fraction",
            ),
            (
                dict(workloads=("ocean",), max_outstanding=0),
                "max_outstanding",
            ),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ExperimentSpec(**kwargs)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown spec field"):
            ExperimentSpec.from_dict(
                {"workloads": ["ocean"], "worklods": ["oltp"]}
            )
        with pytest.raises(ValueError, match="unknown PredictorConfig"):
            ExperimentSpec.from_dict(
                {
                    "workloads": ["ocean"],
                    "predictor_config": {"entries": 64},
                }
            )

    def test_digest_stable_and_sensitive(self):
        a = ExperimentSpec(workloads=("ocean",))
        b = ExperimentSpec(workloads=("ocean",))
        c = ExperimentSpec(workloads=("oltp",))
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()


class TestBandwidthAxis:
    def test_expand_nests_bandwidth_between_seed_and_label(self):
        spec = bandwidth_sweep(
            ("ocean",), (10.0, 1.0), policies=("owner",)
        )
        jobs = spec.expand()
        assert spec.kind == "runtime"
        assert spec.n_jobs == len(jobs) == 2 * 3  # 2 bw x 3 labels
        assert [j.bandwidth for j in jobs] == [10.0] * 3 + [1.0] * 3
        assert [j.index for j in jobs] == list(range(len(jobs)))

    def test_job_config_substitutes_bandwidth_only(self):
        spec = bandwidth_sweep(("ocean",), (2.0,), policies=("owner",))
        job = spec.expand()[0]
        config = spec.job_config(job)
        assert config.link_bandwidth_bytes_per_ns == 2.0
        assert config == dataclasses.replace(
            spec.system_config, link_bandwidth_bytes_per_ns=2.0
        )
        # Without the axis, the spec's config is returned unchanged
        # (identity, so default runs cannot drift).
        plain = ExperimentSpec(workloads=("ocean",), kind="runtime")
        assert plain.job_config(plain.expand()[0]) is plain.system_config

    def test_round_trip_preserves_axis(self):
        spec = bandwidth_sweep(
            ("ocean",), (10.0, 2.5, 1.0, 0.25), policies=("owner",)
        )
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.link_bandwidths == (10.0, 2.5, 1.0, 0.25)

    def test_old_spec_json_defaults_to_no_axis_and_crossbar(self):
        # A pre-interconnect spec file has neither key; it must load
        # with today's crossbar defaults so cached results stay valid.
        spec = ExperimentSpec.from_dict(
            {"workloads": ["ocean"], "kind": "runtime"}
        )
        assert spec.link_bandwidths == ()
        assert spec.system_config.interconnect == "crossbar"

    def test_axis_requires_runtime_kind(self):
        with pytest.raises(ValueError, match="kind='runtime'"):
            ExperimentSpec(
                workloads=("ocean",), link_bandwidths=(1.0,)
            )

    def test_rejects_non_positive_bandwidths(self):
        with pytest.raises(ValueError, match="positive"):
            bandwidth_sweep(("ocean",), (10.0, 0.0))

    def test_rejects_unknown_interconnect(self):
        with pytest.raises(ValueError, match="unknown interconnect"):
            ExperimentSpec(
                workloads=("ocean",),
                system_config=SystemConfig(interconnect="warp"),
            )

    def test_sweep_produces_per_bandwidth_curves(self, tmp_path):
        spec = bandwidth_sweep(
            ("ocean",), (10.0, 0.5), n_references=2000,
            policies=("owner",),
        )
        results = Runner(jobs=1).run(spec)
        assert len(results) == 6
        assert results.has_bandwidth_axis()
        # Normalization is per bandwidth point: directory == 100 at
        # every link size, not just the spec default.
        for record in results:
            assert record.bandwidth in (10.0, 0.5)
            if record.label == "directory":
                assert record["normalized_runtime"] == pytest.approx(
                    100.0
                )
        curves = results.bandwidth_curves("runtime_ns")
        assert set(curves) == {
            "directory", "broadcast-snooping", "owner",
        }
        for points in curves.values():
            assert [bandwidth for bandwidth, _ in points] == [0.5, 10.0]
            assert all(value > 0 for _, value in points)
        # The axis round-trips through ResultSet JSON.
        restored = ResultSet.from_json(results.to_json())
        assert restored == results
        assert restored.bandwidth_curves("runtime_ns") == curves
        # ...and lands in the tidy exports.
        assert "bandwidth" in results.table().splitlines()[0]
        path = tmp_path / "curves.csv"
        results.to_csv(path)
        header = path.read_text().splitlines()[0]
        assert header.startswith("workload,seed,label,bandwidth,")

    def test_curves_average_across_seeds(self):
        records = [
            ResultRecord(
                workload="ocean", seed=seed, label="owner",
                bandwidth=bandwidth,
                metrics={"runtime_ns": value},
            )
            for seed, bandwidth, value in (
                (1, 10.0, 100.0), (2, 10.0, 300.0),
                (1, 1.0, 500.0), (2, 1.0, 700.0),
            )
        ]
        spec = bandwidth_sweep(
            ("ocean",), (10.0, 1.0), seeds=(1, 2), policies=("owner",)
        )
        results = ResultSet(spec, records)
        # One averaged value per bandwidth point, not one per seed.
        assert results.bandwidth_curves("runtime_ns") == {
            "owner": [(1.0, 600.0), (10.0, 200.0)],
        }

    def test_parallel_matches_serial_with_axis(self, tmp_path):
        spec = bandwidth_sweep(
            ("ocean",), (10.0, 0.5), n_references=2000,
            policies=("owner",),
        )
        serial = Runner(jobs=1, cache_dir=tmp_path / "s").run(spec)
        parallel = Runner(jobs=2, cache_dir=tmp_path / "p").run(spec)
        assert serial == parallel
        # Bandwidth cells share one trace: a two-point sweep of one
        # (workload, seed) generates exactly one cache entry.
        assert serial.cache_stats.misses == 1

    def test_tree_interconnect_spec_runs(self):
        spec = ExperimentSpec(
            workloads=("ocean",),
            kind="runtime",
            n_references=2000,
            policies=("owner",),
            system_config=SystemConfig(interconnect="tree"),
        )
        results = run_experiment(spec)
        assert len(results) == 3
        assert not results.has_bandwidth_axis()


class TestTraceCache:
    def test_store_load_round_trip(self, tmp_path):
        corpus = PersistentTraceCorpus(cache_dir=tmp_path)
        first = corpus.collect("ocean", 2000, seed=7)
        assert corpus.cache_stats.misses == 1
        assert corpus.cache_stats.hits == 0

        # A fresh corpus (fresh process stand-in) hits the disk.
        warm = PersistentTraceCorpus(cache_dir=tmp_path)
        second = warm.collect("ocean", 2000, seed=7)
        assert warm.cache_stats.hits == 1
        assert warm.cache_stats.misses == 0
        assert list(second.trace) == list(first.trace)
        assert second.trace.name == first.trace.name
        assert second.trace.n_processors == first.trace.n_processors
        assert second.instructions == first.instructions
        assert second.references == first.references

    def test_memory_layer_shields_disk(self, tmp_path):
        corpus = PersistentTraceCorpus(cache_dir=tmp_path)
        corpus.collect("ocean", 2000)
        corpus.collect("ocean", 2000)
        # Second call is an in-memory hit: no extra disk lookups.
        assert corpus.cache_stats.lookups == 1

    def test_config_change_invalidates(self, tmp_path):
        PersistentTraceCorpus(cache_dir=tmp_path).collect("ocean", 2000)
        small = PersistentTraceCorpus(
            config=SystemConfig(n_processors=4), cache_dir=tmp_path
        )
        small.collect("ocean", 2000)
        # Different system config => different key => regeneration.
        assert small.cache_stats.misses == 1
        assert small.cache_stats.hits == 0

    def test_refs_and_seed_are_part_of_key(self, tmp_path):
        config = SystemConfig()
        key = TraceCache.key("ocean", 2000, 42, config)
        assert key != TraceCache.key("ocean", 2001, 42, config)
        assert key != TraceCache.key("ocean", 2000, 43, config)
        assert key != TraceCache.key("oltp", 2000, 42, config)
        assert key == TraceCache.key("ocean", 2000, 42, SystemConfig())

    def test_pre_refactor_keys_still_resolve(self):
        """Cache keys minted before the interconnect fields existed
        are reproduced exactly (hard-coded digests captured at the
        preceding commit), so existing corpora stay warm without a
        CACHE_FORMAT bump."""
        assert (
            TraceCache.key("ocean", 2000, 42, SystemConfig())
            == "868d8a94c6077e4f7cccc471"
        )
        assert (
            TraceCache.key(
                "oltp", 60000, 42,
                SystemConfig(link_bandwidth_bytes_per_ns=1.0),
            )
            == "0de2ee87c86f135206f94480"
        )

    def test_timing_only_fields_do_not_shape_keys(self):
        """Interconnect kind and hop latency never change which
        references miss, so they share the default config's trace."""
        default = TraceCache.key("ocean", 2000, 42, SystemConfig())
        for config in (
            SystemConfig(interconnect="tree"),
            SystemConfig(interconnect="ideal", hop_latency_ns=2.0),
        ):
            assert TraceCache.key("ocean", 2000, 42, config) == default
        # Trace-shaping fields still invalidate.
        assert (
            TraceCache.key(
                "ocean", 2000, 42, SystemConfig(n_processors=8)
            )
            != default
        )

    def test_corrupt_entry_regenerates(self, tmp_path):
        corpus = PersistentTraceCorpus(cache_dir=tmp_path)
        corpus.collect("ocean", 2000)
        for path in tmp_path.iterdir():
            path.write_text("garbage")
        rebuilt = PersistentTraceCorpus(cache_dir=tmp_path)
        result = rebuilt.collect("ocean", 2000)
        assert rebuilt.cache_stats.misses == 1
        assert len(result.trace) > 0

    def test_clear(self, tmp_path):
        corpus = PersistentTraceCorpus(cache_dir=tmp_path)
        corpus.collect("ocean", 2000)
        assert corpus.disk.clear() == 4  # .trace + .json + .bin + .bin2
        assert corpus.disk.load(
            TraceCache.key("ocean", 2000, 42, corpus.config)
        ) is None


class TestRunner:
    def test_parallel_matches_serial(self, tmp_path):
        spec = ExperimentSpec(
            workloads=("ocean", "barnes-hut"), kind="tradeoff", **SMALL
        )
        serial = Runner(jobs=1, cache_dir=tmp_path / "c1").run(spec)
        parallel = Runner(jobs=2, cache_dir=tmp_path / "c2").run(spec)
        assert serial == parallel
        assert [r.to_dict() for r in serial] == [
            r.to_dict() for r in parallel
        ]

    def test_parallel_reuses_disk_cache(self, tmp_path):
        spec = ExperimentSpec(
            workloads=("ocean", "barnes-hut"), kind="tradeoff", **SMALL
        )
        cold = Runner(jobs=2, cache_dir=tmp_path).run(spec)
        assert cold.cache_stats.misses == 2
        warm = Runner(jobs=2, cache_dir=tmp_path).run(spec)
        assert warm.cache_stats.hits == 2
        assert warm.cache_stats.misses == 0
        assert warm == cold

    def test_without_cache_dir_stays_in_memory(self, tmp_path):
        spec = ExperimentSpec(workloads=("ocean",), **SMALL)
        results = Runner(jobs=1).run(spec)
        assert results.cache_stats.lookups == 0
        assert len(results) == 3  # two baselines + owner

    def test_runtime_kind_includes_baselines(self):
        spec = ExperimentSpec(
            workloads=("ocean",), kind="runtime", **SMALL
        )
        results = run_experiment(spec)
        assert results.labels() == [
            "directory", "broadcast-snooping", "owner",
        ]
        directory = results.records[0]
        assert directory["normalized_runtime"] == pytest.approx(100.0)

    def test_accuracy_kind(self):
        spec = ExperimentSpec(
            workloads=("ocean",), kind="accuracy", **SMALL
        )
        results = run_experiment(spec)
        assert results.labels() == ["owner"]
        record = results.records[0]
        assert 0.0 <= record["coverage_pct"] <= 100.0
        assert record["predictions"] > 0

    def test_shared_corpus_injection(self, config16):
        corpus_spec = ExperimentSpec(workloads=("ocean",), **SMALL)
        corpus = PersistentTraceCorpus(config16, cache_dir=None)
        # cache_dir=None would normally mean "no disk"; explicit corpus
        # wins over the runner's own construction.
        runner = Runner(corpus=corpus)
        runner.run(corpus_spec)
        assert corpus.cache_stats.lookups == 1

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            Runner(jobs=0)

    def test_jobs_none_resolves_to_available_cpus(self, monkeypatch):
        import repro.experiment.runner as runner_module

        monkeypatch.setattr(
            runner_module.os, "sched_getaffinity",
            lambda pid: set(range(6)), raising=False,
        )
        assert runner_module.default_jobs() == 6
        assert Runner(jobs=None).jobs == 6
        # Explicit values are never overridden by the adaptive default.
        assert Runner(jobs=2).jobs == 2

    def test_default_jobs_falls_back_to_cpu_count(self, monkeypatch):
        import repro.experiment.runner as runner_module

        monkeypatch.delattr(
            runner_module.os, "sched_getaffinity", raising=False
        )
        monkeypatch.setattr(runner_module.os, "cpu_count", lambda: 4)
        assert runner_module.default_jobs() == 4
        monkeypatch.setattr(runner_module.os, "cpu_count", lambda: None)
        assert runner_module.default_jobs() == 1

    def test_process_pool_rejects_injected_corpus(self):
        # The thread executor shares an injected corpus directly;
        # only the process pool (which would have to pickle it) still
        # rejects one, pointing at the alternatives.
        spec = ExperimentSpec(
            workloads=("ocean", "barnes-hut"), **SMALL
        )
        runner = Runner(
            jobs=2, executor="processes", corpus=PersistentTraceCorpus()
        )
        with pytest.raises(ValueError, match="injected corpus"):
            runner.run(spec)

    def test_max_outstanding_round_trips_and_changes_results(self):
        base = ExperimentSpec(
            workloads=("ocean",), kind="runtime", **SMALL
        )
        wide = dataclasses.replace(base, max_outstanding=8)
        assert ExperimentSpec.from_json(wide.to_json()) == wide
        assert wide.digest() != base.digest()


class TestResultSet:
    @pytest.fixture
    def results(self):
        spec = ExperimentSpec(workloads=("ocean",), **SMALL)
        return run_experiment(spec)

    def test_json_round_trip(self, results, tmp_path):
        path = tmp_path / "results.json"
        results.to_json(path)
        restored = ResultSet.from_json(path)
        assert restored == results
        # Text form round-trips too.
        assert ResultSet.from_json(results.to_json()) == results

    def test_csv_export(self, results, tmp_path):
        path = tmp_path / "results.csv"
        results.to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("workload,seed,label,")
        assert len(lines) == 1 + len(results)
        assert lines[1].startswith("ocean,42,directory,")

    def test_rows_and_table(self, results):
        rows = results.rows()
        assert rows[0]["workload"] == "ocean"
        assert "indirection_pct" in rows[0]
        text = results.table()
        assert "broadcast-snooping" in text
        assert "indirection_pct" in text

    def test_tradeoff_points_conversion(self, results):
        points = results.tradeoff_points()
        assert [p.label for p in points] == results.labels()
        assert all(isinstance(p.misses, int) for p in points)

    def test_equality_ignores_cache_stats(self, results):
        clone = ResultSet.from_dict(results.to_dict())
        clone.cache_stats.hits += 5
        assert clone == results

    def test_record_metrics_access(self):
        record = ResultRecord(
            workload="ocean", seed=1, label="owner",
            metrics={"x": 1.0},
        )
        assert record["x"] == 1.0
        assert record.to_dict()["metrics"] == {"x": 1.0}
        assert ResultRecord.from_dict(record.to_dict()) == record


class TestGracefulFailure:
    """A raising cell is retried once, then reported — never fatal."""

    @staticmethod
    def _flaky(real, fail_labels, times):
        """Wrap execute_job to fail ``times`` times for some labels."""
        budget = dict.fromkeys(fail_labels, times)

        def fake(spec, job, corpus):
            if budget.get(job.label, 0) > 0:
                budget[job.label] -= 1
                raise RuntimeError(f"injected fault in {job.label}")
            return real(spec, job, corpus)

        return fake

    def test_transient_fault_is_retried_and_succeeds(
        self, monkeypatch
    ):
        import repro.experiment.runner as runner_module

        spec = ExperimentSpec(workloads=("ocean",), **SMALL)
        reference = Runner(jobs=1).run(spec)
        monkeypatch.setattr(
            runner_module, "execute_job",
            self._flaky(runner_module.execute_job, ("owner",), 1),
        )
        results = Runner(jobs=1).run(spec)
        assert results.failures == []
        assert results == reference

    def test_persistent_fault_reported_not_fatal(self, monkeypatch):
        import repro.experiment.runner as runner_module
        from repro.experiment import CellFailure

        spec = ExperimentSpec(workloads=("ocean",), **SMALL)
        monkeypatch.setattr(
            runner_module, "execute_job",
            self._flaky(runner_module.execute_job, ("owner",), 99),
        )
        results = Runner(jobs=1).run(spec)
        # The sweep completed: baselines present, owner absent but
        # reported as structured failure metadata with the traceback.
        assert results.labels() == ["directory", "broadcast-snooping"]
        assert len(results.failures) == 1
        failure = results.failures[0]
        assert isinstance(failure, CellFailure)
        assert failure.label == "owner"
        assert failure.attempts == 2  # initial + one retry
        assert "injected fault" in failure.error
        assert "RuntimeError" in failure.traceback
        assert failure.to_dict()["workload"] == "ocean"

    def test_failures_excluded_from_serialization_and_equality(
        self, monkeypatch
    ):
        import repro.experiment.runner as runner_module

        spec = ExperimentSpec(workloads=("ocean",), **SMALL)
        monkeypatch.setattr(
            runner_module, "execute_job",
            self._flaky(runner_module.execute_job, ("owner",), 99),
        )
        results = Runner(jobs=1).run(spec)
        clone = ResultSet.from_dict(results.to_dict())
        assert clone.failures == []  # run metadata, like perf/cache
        assert clone == results
        assert "failures" not in results.to_dict()

    def test_runtime_missing_baseline_does_not_crash(
        self, monkeypatch
    ):
        import repro.experiment.runner as runner_module

        spec = ExperimentSpec(
            workloads=("ocean",), kind="runtime", **SMALL
        )
        monkeypatch.setattr(
            runner_module, "execute_job",
            self._flaky(
                runner_module.execute_job, ("directory",), 99
            ),
        )
        # The directory baseline failed; normalization must degrade
        # (0.0 = "no baseline" convention) instead of KeyError.
        results = Runner(jobs=1).run(spec)
        assert len(results.failures) == 1
        assert results.failures[0].label == "directory"
        for record in results.records:
            assert record["normalized_runtime"] == pytest.approx(0.0)


class TestThreadedRunner:
    """``executor='threads'``: byte identity with serial everywhere.

    The thread pool shares one in-memory corpus and reassembles in
    canonical job order, so on every registered backend — pure, numpy,
    and the GIL-releasing native kernels — a threaded sweep must equal
    the serial one down to the serialized JSON bytes, for every
    protocol and predictor the spec expands to.
    """

    ALL_POLICIES = (
        "owner", "broadcast-if-shared", "group", "owner-group",
        "sticky-spatial",
    )

    @pytest.fixture(params=("pure", "numpy", "native"))
    def unified_backend(self, request):
        from repro import kernels
        from repro.common import backend as _backend

        name = request.param
        if name not in kernels.available_backends():
            pytest.skip(f"{name} backend unavailable on this machine")
        _backend.set_backend(name)
        yield name
        _backend.set_backend("auto")

    def test_threads_match_serial_every_protocol(self, unified_backend):
        spec = ExperimentSpec(
            workloads=("ocean", "barnes-hut"),
            kind="tradeoff",
            n_references=2000,
            policies=self.ALL_POLICIES,
        )
        serial = Runner(jobs=1).run(spec)
        threaded = Runner(jobs=4, executor="threads").run(spec)
        assert serial == threaded
        assert serial.to_json() == threaded.to_json()

    def test_runtime_threads_match_serial(self, unified_backend):
        # Runtime sweeps normalize during reassembly; canonical-order
        # reassembly must make that path thread-order independent too.
        spec = ExperimentSpec(
            workloads=("ocean",),
            kind="runtime",
            n_references=2000,
            policies=("owner", "group"),
            seeds=(1, 2),
        )
        serial = Runner(jobs=1).run(spec)
        threaded = Runner(jobs=4, executor="threads").run(spec)
        assert serial == threaded
        assert serial.to_json() == threaded.to_json()

    def test_injected_corpus_shared_across_threads(self):
        from repro.evaluation.corpus import TraceCorpus

        spec = ExperimentSpec(
            workloads=("ocean", "barnes-hut"), seeds=(1, 2), **SMALL
        )
        corpus = TraceCorpus(spec.system_config)
        threaded = Runner(
            jobs=4, executor="threads", corpus=corpus
        ).run(spec)
        assert not threaded.failures
        # One generation per unique (workload, seed) cell, shared by
        # every label cell of the sweep.
        assert len(corpus._cache) == 4
        assert threaded == Runner(jobs=1, corpus=corpus).run(spec)

    def test_resolved_executor_follows_backend(self):
        from repro import kernels
        from repro.common import backend as _backend

        assert Runner(jobs=2, executor="threads").resolved_executor() \
            == "threads"
        assert Runner(jobs=2, executor="processes").resolved_executor() \
            == "processes"
        if "native" in kernels.available_backends():
            _backend.set_backend("native")
            try:
                assert Runner(jobs=2).resolved_executor() == "threads"
            finally:
                _backend.set_backend("auto")
        _backend.set_backend("pure")
        try:
            assert Runner(jobs=2).resolved_executor() == "processes"
        finally:
            _backend.set_backend("auto")

    def test_rejects_bad_executor(self):
        with pytest.raises(ValueError, match="executor"):
            Runner(jobs=2, executor="fibers")
