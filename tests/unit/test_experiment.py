"""Unit tests for the unified experiment API."""

import dataclasses
import json

import pytest

from repro.common.params import PredictorConfig, SystemConfig
from repro.experiment import (
    ExperimentSpec,
    PersistentTraceCorpus,
    ResultRecord,
    ResultSet,
    Runner,
    TraceCache,
    run_experiment,
)

#: Small-but-nonempty settings shared by the runner tests.
SMALL = dict(n_references=2000, policies=("owner",))


class TestExperimentSpec:
    def test_json_round_trip(self):
        spec = ExperimentSpec(
            name="rt",
            kind="runtime",
            workloads=("oltp", "apache"),
            n_references=5000,
            seeds=(1, 2),
            policies=("owner", "group"),
            predictor_config=PredictorConfig(n_entries=None),
            system_config=SystemConfig(n_processors=8),
            processor_model="detailed",
        )
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.predictor_config.unbounded
        assert restored.system_config.n_processors == 8

    def test_from_dict_partial_configs(self):
        spec = ExperimentSpec.from_dict(
            {
                "workloads": ["ocean"],
                "predictor_config": {"n_entries": None},
                "system_config": {"n_processors": 4},
            }
        )
        assert spec.predictor_config.unbounded
        # Unnamed fields keep their defaults.
        assert spec.predictor_config.index_granularity == 1024
        assert spec.system_config.n_processors == 4
        assert spec.kind == "tradeoff"

    def test_sequences_normalized_to_tuples(self):
        spec = ExperimentSpec(
            workloads=["ocean"], seeds=[1], policies=["owner"]
        )
        assert spec.workloads == ("ocean",)
        assert spec.seeds == (1,)
        assert spec == ExperimentSpec(
            workloads=("ocean",), seeds=(1,), policies=("owner",)
        )

    def test_expand_cross_product(self):
        spec = ExperimentSpec(
            workloads=("ocean", "oltp"), seeds=(1, 2, 3)
        )
        jobs = spec.expand()
        # Per-label cells: 2 workloads x 3 seeds x (2 baselines + 4
        # paper policies).
        labels = ("directory", "broadcast-snooping") + spec.policies
        assert spec.n_jobs == len(jobs) == 6 * len(labels)
        assert [j.index for j in jobs] == list(range(len(jobs)))
        assert {(j.workload, j.seed, j.label) for j in jobs} == {
            (w, s, label)
            for w in ("ocean", "oltp")
            for s in (1, 2, 3)
            for label in labels
        }

    def test_expand_label_cells_by_kind(self):
        tradeoff = ExperimentSpec(
            workloads=("ocean",), policies=("owner",),
            include_baselines=False,
        )
        assert tradeoff.cell_labels() == ("owner",)
        # Runtime always carries its normalization baselines.
        runtime = ExperimentSpec(
            workloads=("ocean",), kind="runtime", policies=("owner",),
            include_baselines=False,
        )
        assert runtime.cell_labels() == (
            "directory", "broadcast-snooping", "owner",
        )
        accuracy = ExperimentSpec(
            workloads=("ocean",), kind="accuracy", policies=("owner",)
        )
        assert accuracy.cell_labels() == ("owner",)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(workloads=("nope",)), "unknown workload"),
            (dict(workloads=()), "at least one workload"),
            (dict(workloads=("ocean",), kind="nope"), "unknown kind"),
            (
                dict(workloads=("ocean",), policies=("nope",)),
                "unknown policy",
            ),
            (
                dict(workloads=("ocean",), n_references=0),
                "n_references",
            ),
            (
                dict(workloads=("ocean",), warmup_fraction=1.0),
                "warmup_fraction",
            ),
            (
                dict(workloads=("ocean",), max_outstanding=0),
                "max_outstanding",
            ),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ExperimentSpec(**kwargs)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown spec field"):
            ExperimentSpec.from_dict(
                {"workloads": ["ocean"], "worklods": ["oltp"]}
            )
        with pytest.raises(ValueError, match="unknown PredictorConfig"):
            ExperimentSpec.from_dict(
                {
                    "workloads": ["ocean"],
                    "predictor_config": {"entries": 64},
                }
            )

    def test_digest_stable_and_sensitive(self):
        a = ExperimentSpec(workloads=("ocean",))
        b = ExperimentSpec(workloads=("ocean",))
        c = ExperimentSpec(workloads=("oltp",))
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()


class TestTraceCache:
    def test_store_load_round_trip(self, tmp_path):
        corpus = PersistentTraceCorpus(cache_dir=tmp_path)
        first = corpus.collect("ocean", 2000, seed=7)
        assert corpus.cache_stats.misses == 1
        assert corpus.cache_stats.hits == 0

        # A fresh corpus (fresh process stand-in) hits the disk.
        warm = PersistentTraceCorpus(cache_dir=tmp_path)
        second = warm.collect("ocean", 2000, seed=7)
        assert warm.cache_stats.hits == 1
        assert warm.cache_stats.misses == 0
        assert list(second.trace) == list(first.trace)
        assert second.trace.name == first.trace.name
        assert second.trace.n_processors == first.trace.n_processors
        assert second.instructions == first.instructions
        assert second.references == first.references

    def test_memory_layer_shields_disk(self, tmp_path):
        corpus = PersistentTraceCorpus(cache_dir=tmp_path)
        corpus.collect("ocean", 2000)
        corpus.collect("ocean", 2000)
        # Second call is an in-memory hit: no extra disk lookups.
        assert corpus.cache_stats.lookups == 1

    def test_config_change_invalidates(self, tmp_path):
        PersistentTraceCorpus(cache_dir=tmp_path).collect("ocean", 2000)
        small = PersistentTraceCorpus(
            config=SystemConfig(n_processors=4), cache_dir=tmp_path
        )
        small.collect("ocean", 2000)
        # Different system config => different key => regeneration.
        assert small.cache_stats.misses == 1
        assert small.cache_stats.hits == 0

    def test_refs_and_seed_are_part_of_key(self, tmp_path):
        config = SystemConfig()
        key = TraceCache.key("ocean", 2000, 42, config)
        assert key != TraceCache.key("ocean", 2001, 42, config)
        assert key != TraceCache.key("ocean", 2000, 43, config)
        assert key != TraceCache.key("oltp", 2000, 42, config)
        assert key == TraceCache.key("ocean", 2000, 42, SystemConfig())

    def test_corrupt_entry_regenerates(self, tmp_path):
        corpus = PersistentTraceCorpus(cache_dir=tmp_path)
        corpus.collect("ocean", 2000)
        for path in tmp_path.iterdir():
            path.write_text("garbage")
        rebuilt = PersistentTraceCorpus(cache_dir=tmp_path)
        result = rebuilt.collect("ocean", 2000)
        assert rebuilt.cache_stats.misses == 1
        assert len(result.trace) > 0

    def test_clear(self, tmp_path):
        corpus = PersistentTraceCorpus(cache_dir=tmp_path)
        corpus.collect("ocean", 2000)
        assert corpus.disk.clear() == 3  # .trace + .json + .bin
        assert corpus.disk.load(
            TraceCache.key("ocean", 2000, 42, corpus.config)
        ) is None


class TestRunner:
    def test_parallel_matches_serial(self, tmp_path):
        spec = ExperimentSpec(
            workloads=("ocean", "barnes-hut"), kind="tradeoff", **SMALL
        )
        serial = Runner(jobs=1, cache_dir=tmp_path / "c1").run(spec)
        parallel = Runner(jobs=2, cache_dir=tmp_path / "c2").run(spec)
        assert serial == parallel
        assert [r.to_dict() for r in serial] == [
            r.to_dict() for r in parallel
        ]

    def test_parallel_reuses_disk_cache(self, tmp_path):
        spec = ExperimentSpec(
            workloads=("ocean", "barnes-hut"), kind="tradeoff", **SMALL
        )
        cold = Runner(jobs=2, cache_dir=tmp_path).run(spec)
        assert cold.cache_stats.misses == 2
        warm = Runner(jobs=2, cache_dir=tmp_path).run(spec)
        assert warm.cache_stats.hits == 2
        assert warm.cache_stats.misses == 0
        assert warm == cold

    def test_without_cache_dir_stays_in_memory(self, tmp_path):
        spec = ExperimentSpec(workloads=("ocean",), **SMALL)
        results = Runner(jobs=1).run(spec)
        assert results.cache_stats.lookups == 0
        assert len(results) == 3  # two baselines + owner

    def test_runtime_kind_includes_baselines(self):
        spec = ExperimentSpec(
            workloads=("ocean",), kind="runtime", **SMALL
        )
        results = run_experiment(spec)
        assert results.labels() == [
            "directory", "broadcast-snooping", "owner",
        ]
        directory = results.records[0]
        assert directory["normalized_runtime"] == pytest.approx(100.0)

    def test_accuracy_kind(self):
        spec = ExperimentSpec(
            workloads=("ocean",), kind="accuracy", **SMALL
        )
        results = run_experiment(spec)
        assert results.labels() == ["owner"]
        record = results.records[0]
        assert 0.0 <= record["coverage_pct"] <= 100.0
        assert record["predictions"] > 0

    def test_shared_corpus_injection(self, config16):
        corpus_spec = ExperimentSpec(workloads=("ocean",), **SMALL)
        corpus = PersistentTraceCorpus(config16, cache_dir=None)
        # cache_dir=None would normally mean "no disk"; explicit corpus
        # wins over the runner's own construction.
        runner = Runner(corpus=corpus)
        runner.run(corpus_spec)
        assert corpus.cache_stats.lookups == 1

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            Runner(jobs=0)

    def test_jobs_none_resolves_to_available_cpus(self, monkeypatch):
        import repro.experiment.runner as runner_module

        monkeypatch.setattr(
            runner_module.os, "sched_getaffinity",
            lambda pid: set(range(6)), raising=False,
        )
        assert runner_module.default_jobs() == 6
        assert Runner(jobs=None).jobs == 6
        # Explicit values are never overridden by the adaptive default.
        assert Runner(jobs=2).jobs == 2

    def test_default_jobs_falls_back_to_cpu_count(self, monkeypatch):
        import repro.experiment.runner as runner_module

        monkeypatch.delattr(
            runner_module.os, "sched_getaffinity", raising=False
        )
        monkeypatch.setattr(runner_module.os, "cpu_count", lambda: 4)
        assert runner_module.default_jobs() == 4
        monkeypatch.setattr(runner_module.os, "cpu_count", lambda: None)
        assert runner_module.default_jobs() == 1

    def test_rejects_injected_corpus_with_multiple_workers(self):
        spec = ExperimentSpec(
            workloads=("ocean", "barnes-hut"), **SMALL
        )
        runner = Runner(jobs=2, corpus=PersistentTraceCorpus())
        with pytest.raises(ValueError, match="injected corpus"):
            runner.run(spec)

    def test_max_outstanding_round_trips_and_changes_results(self):
        base = ExperimentSpec(
            workloads=("ocean",), kind="runtime", **SMALL
        )
        wide = dataclasses.replace(base, max_outstanding=8)
        assert ExperimentSpec.from_json(wide.to_json()) == wide
        assert wide.digest() != base.digest()


class TestResultSet:
    @pytest.fixture
    def results(self):
        spec = ExperimentSpec(workloads=("ocean",), **SMALL)
        return run_experiment(spec)

    def test_json_round_trip(self, results, tmp_path):
        path = tmp_path / "results.json"
        results.to_json(path)
        restored = ResultSet.from_json(path)
        assert restored == results
        # Text form round-trips too.
        assert ResultSet.from_json(results.to_json()) == results

    def test_csv_export(self, results, tmp_path):
        path = tmp_path / "results.csv"
        results.to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("workload,seed,label,")
        assert len(lines) == 1 + len(results)
        assert lines[1].startswith("ocean,42,directory,")

    def test_rows_and_table(self, results):
        rows = results.rows()
        assert rows[0]["workload"] == "ocean"
        assert "indirection_pct" in rows[0]
        text = results.table()
        assert "broadcast-snooping" in text
        assert "indirection_pct" in text

    def test_tradeoff_points_conversion(self, results):
        points = results.tradeoff_points()
        assert [p.label for p in points] == results.labels()
        assert all(isinstance(p.misses, int) for p in points)

    def test_equality_ignores_cache_stats(self, results):
        clone = ResultSet.from_dict(results.to_dict())
        clone.cache_stats.hits += 5
        assert clone == results

    def test_record_metrics_access(self):
        record = ResultRecord(
            workload="ocean", seed=1, label="owner",
            metrics={"x": 1.0},
        )
        assert record["x"] == 1.0
        assert record.to_dict()["metrics"] == {"x": 1.0}
        assert ResultRecord.from_dict(record.to_dict()) == record
