"""Count-aware batch training kernels vs. per-event training.

``train_external_batch(key, ..., count)`` must leave the predictor's
table in exactly the state that ``count`` repeated
``train_external_key`` calls produce (up to LRU tick values, whose
relative order is preserved by collapsing same-key touches).
"""

import pytest

from repro.common.params import PredictorConfig
from repro.common.types import AccessType
from repro.predictors.registry import create_predictor

N_NODES = 4

POLICIES = (
    "owner",
    "broadcast-if-shared",
    "group",
    "owner-group",
    "bandwidth-adaptive",
    "sticky-spatial",
)


def _table_entries(predictor):
    """Comparable snapshots of the predictor's table entries."""

    def entry_state(entry):
        if hasattr(entry, "__slots__") or hasattr(entry, "__dict__"):
            slots = getattr(type(entry), "__slots__", None)
            names = slots if slots else vars(entry)
            return {n: getattr(entry, n) for n in names}
        return entry

    tables = []
    for name in ("_table", "_owner", "_group", "_aggressive",
                 "_conservative"):
        inner = getattr(predictor, name, None)
        if inner is None:
            continue
        if hasattr(inner, "_entries"):
            tables.append(
                {k: entry_state(v) for k, v in inner._entries.items()}
            )
        else:  # nested predictor (owner-group / adaptive members)
            tables.extend(_table_entries(inner))
    if hasattr(predictor, "_entries"):  # sticky-spatial
        tables.append(dict(predictor._entries))
    return tables


def _seed(predictor, key, access=AccessType.GETX):
    """Allocate/train an entry at ``key`` so batches have state to hit."""
    predictor.train_response_key(key, key * 64, 0x10, 1, access, True)


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("count", (1, 2, 3, 7, 40))
@pytest.mark.parametrize("access", (AccessType.GETS, AccessType.GETX))
def test_batch_matches_repeated_events(policy, count, access):
    config = PredictorConfig(n_entries=64, index_granularity=64)
    batched = create_predictor(policy, N_NODES, config)
    repeated = create_predictor(policy, N_NODES, config)
    key = 5
    _seed(batched, key)
    _seed(repeated, key)

    batched.train_external_batch(key, key * 64, 0x10, 2, access, count)
    for _ in range(count):
        repeated.train_external_key(key, key * 64, 0x10, 2, access)

    assert _table_entries(batched) == _table_entries(repeated)


@pytest.mark.parametrize("policy", POLICIES)
def test_batch_on_missing_entry_is_harmless(policy):
    config = PredictorConfig(n_entries=64, index_granularity=64)
    predictor = create_predictor(policy, N_NODES, config)
    predictor.train_external_batch(9, 9 * 64, 0x10, 1, AccessType.GETX, 3)
    reference = create_predictor(policy, N_NODES, config)
    for _ in range(3):
        reference.train_external_key(9, 9 * 64, 0x10, 1, AccessType.GETX)
    assert _table_entries(predictor) == _table_entries(reference)


def test_group_batch_crosses_rollover_decay():
    """A batch long enough to wrap the 5-bit rollover must decay."""
    config = PredictorConfig(n_entries=64, index_granularity=64)
    batched = create_predictor("group", N_NODES, config)
    repeated = create_predictor("group", N_NODES, config)
    _seed(batched, 3)
    _seed(repeated, 3)
    batched.train_external_batch(3, 3 * 64, 0x10, 2, AccessType.GETS, 70)
    for _ in range(70):
        repeated.train_external_key(3, 3 * 64, 0x10, 2, AccessType.GETS)
    assert _table_entries(batched) == _table_entries(repeated)


def test_group_batch_no_train_down_closed_form():
    from repro.predictors.group import GroupPredictor

    config = PredictorConfig(n_entries=64, index_granularity=64)
    batched = GroupPredictor(N_NODES, config, train_down=False)
    repeated = GroupPredictor(N_NODES, config, train_down=False)
    _seed(batched, 3)
    _seed(repeated, 3)
    batched.train_external_batch(3, 3 * 64, 0x10, 2, AccessType.GETS, 5)
    for _ in range(5):
        repeated.train_external_key(3, 3 * 64, 0x10, 2, AccessType.GETS)
    assert _table_entries(batched) == _table_entries(repeated)
    # The predicted-bits cache crossed the threshold exactly once.
    entry = batched._table.lookup(3)
    assert entry.bits & (1 << 2)
