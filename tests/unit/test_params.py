"""Unit tests for system/predictor configuration."""

import pytest

from repro.common.params import (
    LatencyModel,
    PredictorConfig,
    SystemConfig,
    TrafficModel,
)


class TestSystemConfig:
    def test_defaults_match_table4(self):
        config = SystemConfig()
        assert config.n_processors == 16
        assert config.block_size == 64
        assert config.l2_size == 4 * 1024 * 1024
        assert config.l2_assoc == 4
        assert config.memory_latency_ns == 80.0
        assert config.link_latency_ns == 50.0
        assert config.link_bandwidth_bytes_per_ns == 10.0
        assert config.clock_ghz == 2.0

    def test_message_sizes_match_section_5_1(self):
        config = SystemConfig()
        assert config.control_message_bytes == 8
        assert config.data_message_bytes == 72

    def test_derived_geometry(self):
        config = SystemConfig()
        assert config.blocks_per_macroblock == 16
        assert config.l2_sets == 4 * 1024 * 1024 // (64 * 4)
        assert config.cycle_ns == pytest.approx(0.5)

    def test_with_processors(self):
        config = SystemConfig().with_processors(64)
        assert config.n_processors == 64
        assert config.l2_size == SystemConfig().l2_size

    def test_rejects_bad_processor_count(self):
        with pytest.raises(ValueError):
            SystemConfig(n_processors=0)

    def test_rejects_non_pow2_block(self):
        with pytest.raises(ValueError):
            SystemConfig(block_size=96)

    def test_rejects_macroblock_smaller_than_block(self):
        with pytest.raises(ValueError):
            SystemConfig(block_size=64, macroblock_size=32)

    def test_interconnect_defaults(self):
        config = SystemConfig()
        assert config.interconnect == "crossbar"
        # 16-node binary tree: 8 hops up+down at the default hop
        # latency reproduce the crossbar's flat 50 ns traversal.
        assert 8 * config.hop_latency_ns == config.link_latency_ns

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(link_bandwidth_bytes_per_ns=0),
            dict(link_bandwidth_bytes_per_ns=-1.0),
            dict(hop_latency_ns=0),
            dict(hop_latency_ns=-0.5),
            dict(clock_ghz=0),
            dict(link_latency_ns=-1.0),
            dict(memory_latency_ns=-1.0),
            dict(l2_latency_ns=-1.0),
            dict(interconnect=""),
        ],
    )
    def test_rejects_bad_timing_fields_at_construction(self, kwargs):
        with pytest.raises(ValueError):
            SystemConfig(**kwargs)


class TestLatencyModel:
    def test_paper_latencies(self):
        """Section 5.1: 180 ns memory, 112 ns direct c2c, 242 ns 3-hop."""
        model = LatencyModel.from_config(SystemConfig())
        assert model.memory_ns == pytest.approx(180.0)
        assert model.cache_to_cache_direct_ns == pytest.approx(112.0)
        assert model.cache_to_cache_indirect_ns == pytest.approx(242.0)

    def test_ordering(self):
        model = LatencyModel.from_config(SystemConfig())
        assert (
            model.cache_to_cache_direct_ns
            < model.memory_ns
            < model.cache_to_cache_indirect_ns
        )


class TestTrafficModel:
    def test_from_config(self):
        traffic = TrafficModel.from_config(SystemConfig())
        assert traffic.control_bytes == 8
        assert traffic.data_bytes == 72


class TestPredictorConfig:
    def test_paper_default(self):
        config = PredictorConfig()
        assert config.n_entries == 8192
        assert config.index_granularity == 1024
        assert not config.use_pc_index
        assert not config.unbounded
        assert config.n_sets == 8192 // 4

    def test_unbounded(self):
        config = PredictorConfig(n_entries=None)
        assert config.unbounded
        with pytest.raises(ValueError):
            _ = config.n_sets

    @pytest.mark.parametrize("bad", [100, -8, 0])
    def test_rejects_bad_entry_counts(self, bad):
        with pytest.raises(ValueError):
            PredictorConfig(n_entries=bad)

    def test_rejects_indivisible_associativity(self):
        with pytest.raises(ValueError):
            PredictorConfig(n_entries=64, associativity=3)

    def test_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            PredictorConfig(index_granularity=100)
