"""Unit tests for multicast snooping with destination-set prediction."""

import pytest

from repro.common.params import PredictorConfig, SystemConfig
from repro.protocols.base import LatencyClass
from repro.protocols.multicast import MulticastSnoopingProtocol

from tests.conftest import gets, getx, make_trace

UNBOUNDED = PredictorConfig(n_entries=None, index_granularity=64)


def make(config4, predictor="minimal", **kwargs):
    return MulticastSnoopingProtocol(
        config4, predictor=predictor, predictor_config=UNBOUNDED, **kwargs
    )


class TestSufficiencyPath:
    def test_memory_read_with_minimal_set_succeeds(self, config4):
        protocol = make(config4)
        outcome = protocol.handle(gets(0x40, 0))
        assert not outcome.indirection
        assert outcome.retries == 0
        assert outcome.latency_class is LatencyClass.MEMORY

    def test_insufficient_set_retries_once(self, config4):
        protocol = make(config4)  # minimal predictor never finds owners
        protocol.handle(getx(0x00, 1))  # home of 0x00 is node 0
        outcome = protocol.handle(gets(0x00, 2))
        assert outcome.indirection
        assert outcome.retries == 1
        assert outcome.latency_class is LatencyClass.INDIRECT
        assert outcome.retry_messages > 0

    def test_broadcast_predictor_never_retries(self, config4):
        protocol = make(config4, predictor="broadcast")
        trace = make_trace(
            [getx(0x40, 0), gets(0x40, 1), getx(0x40, 2), gets(0x40, 3)]
        )
        totals = protocol.run(trace)
        assert totals.indirections == 0
        assert totals.retries == 0

    def test_oracle_predictor_never_retries(self, config4):
        protocol = make(config4, predictor="oracle")
        trace = make_trace(
            [getx(0x40, i % 4) for i in range(20)]
            + [gets(0x40, (i + 1) % 4) for i in range(20)]
        )
        totals = protocol.run(trace)
        assert totals.indirections == 0

    def test_oracle_uses_minimal_bandwidth(self, config4):
        oracle = make(config4, predictor="oracle")
        minimal = make(config4, predictor="minimal")
        trace = make_trace([getx(0x40 + 64 * i, i % 4) for i in range(20)])
        oracle_totals = oracle.run(trace)
        minimal_totals = minimal.run(trace)
        assert (
            oracle_totals.request_messages_per_miss
            <= minimal_totals.request_messages_per_miss + 1e-9
        )


class TestRetryCosts:
    def test_retry_messages_cover_corrected_set(self, config4):
        protocol = make(config4)
        protocol.handle(getx(0x00, 1))
        outcome = protocol.handle(gets(0x00, 2))
        # Corrected set: requester, home, owner -> at least owner gets
        # a retry delivery beyond the requester.
        assert outcome.retry_messages >= 1

    def test_total_includes_requests_and_retries(self, config4):
        protocol = make(config4)
        protocol.handle(getx(0x00, 1))
        outcome = protocol.handle(gets(0x00, 2))
        assert (
            outcome.total_request_messages
            == outcome.request_messages + outcome.retry_messages
        )


class TestRaceWindow:
    def test_races_force_extra_retries(self, config4):
        protocol = make(config4, race_probability=0.99, seed=1)
        protocol.handle(getx(0x00, 1))
        outcome = protocol.handle(gets(0x00, 2))
        # With near-certain races, the retry loop runs to the broadcast
        # fallback on the third attempt.
        assert outcome.retries == 3

    def test_third_retry_broadcast_bounds_retries(self, config4):
        protocol = make(config4, race_probability=0.99, seed=2)
        protocol.handle(getx(0x00, 1))
        for i in range(5):
            outcome = protocol.handle(gets(0x00, 2, pc=0x10 + i))
            assert outcome.retries <= 3

    def test_rejects_bad_probability(self, config4):
        with pytest.raises(ValueError):
            make(config4, race_probability=1.5)


class TestTraining:
    def test_owner_predictor_learns_and_stops_retrying(self, config4):
        protocol = make(config4, predictor="owner")
        protocol.handle(getx(0x00, 1))
        first = protocol.handle(gets(0x00, 2))
        assert first.indirection  # cold predictor
        protocol.handle(getx(0x00, 1, pc=0x30))
        second = protocol.handle(gets(0x00, 2, pc=0x34))
        # Node 2 saw node 1's GETX (it was a sharer in the corrected
        # set) and its response training: predicts owner correctly now.
        assert not second.indirection

    def test_predictors_are_per_node(self, config4):
        protocol = make(config4, predictor="owner")
        assert len(protocol.predictors) == config4.n_processors
        assert all(
            p is not q
            for p, q in zip(protocol.predictors, protocol.predictors[1:])
        )

    def test_sticky_spatial_trains_from_truth(self, config4):
        protocol = make(config4, predictor="sticky-spatial")
        protocol.handle(getx(0x00, 1))
        first = protocol.handle(gets(0x00, 2))
        assert first.indirection
        second = protocol.handle(gets(0x00, 2, pc=0x44))
        # Requester 2's sticky entry now holds {owner, home}.
        assert not second.indirection


class TestSixteenNodes:
    def test_group_beats_minimal_on_migratory(self):
        config = SystemConfig()
        group = MulticastSnoopingProtocol(
            config, "group", predictor_config=UNBOUNDED
        )
        minimal = MulticastSnoopingProtocol(
            config, "minimal", predictor_config=UNBOUNDED
        )
        records = []
        for round_index in range(40):
            node = round_index % 2  # pairwise migration on block 0x40
            records.append(gets(0x40, node, pc=0x50))
            records.append(getx(0x40, node, pc=0x54))
        trace = make_trace(records, n_processors=16)
        group_totals = group.run(trace)
        minimal_totals = minimal.run(trace)
        assert group_totals.indirections < minimal_totals.indirections


class _RecordingPredictor:
    """Minimal predictor stub that records its training calls."""

    def __init__(self, n_nodes=4):
        from repro.common.destset import DestinationSet
        from repro.predictors.base import DestinationSetPredictor

        class _Stub(DestinationSetPredictor):
            policy_name = "recording-stub"

            def __init__(stub):
                super().__init__(n_nodes, UNBOUNDED)
                stub.external = []
                stub.responses = []

            def predict(stub, address, pc, access):
                return DestinationSet.empty(stub.n_nodes)

            def train_response(stub, address, pc, responder, access,
                               allocate):
                stub.responses.append((address, responder))

            def train_external(stub, address, pc, requester, access):
                stub.external.append((address, requester))

        self.instance = _Stub()


class TestPredictorSwapRefreshesHotCaches:
    """Swapping a predictor in-place must retrain the *new* instance.

    ``proto.predictors[i] = p`` mutates the sequence the property
    returns; the protocol's cached hot-path state (bound
    ``train_external`` methods, the needs-truth flag) must refresh
    immediately — including for direct ``_handle_fast`` calls that
    never pass through a columnar replay's refresh hook.
    """

    def test_item_assignment_rebinds_training_methods(self, config4):
        protocol = make(config4, predictor="owner")
        replacement = _RecordingPredictor().instance
        protocol.predictors[2] = replacement
        bound = protocol._train_external_fns[2]
        assert bound.__self__ is replacement

    def test_item_assignment_refreshes_needs_truth(self, config4):
        from repro.predictors.registry import create_predictor

        protocol = make(config4, predictor="owner")
        assert not protocol._needs_truth
        protocol.predictors[1] = create_predictor(
            "sticky-spatial", 4, UNBOUNDED
        )
        assert protocol._needs_truth

    def test_swapped_predictor_trains_on_fast_path(self, config4):
        protocol = make(config4, predictor="broadcast")
        replacement = _RecordingPredictor().instance
        protocol.predictors[2] = replacement
        # A broadcast GETX from node 0 is delivered to every node, so
        # the swapped-in instance at node 2 must observe it.
        protocol._handle_fast(0x40, 0x1000, 0, 1, 0x40)
        assert replacement.external == [(0x40, 0)]

    def test_swapped_predictor_trains_on_columnar_replay(self, config4):
        protocol = make(config4, predictor="broadcast")
        replacement = _RecordingPredictor().instance
        protocol.predictors[2] = replacement
        trace = make_trace([getx(0x40, 0), gets(0x80, 1)])
        protocol.run(trace)
        assert replacement.external == [(0x40, 0), (0x80, 1)]
        # Its own miss trains via train_response, not train_external.
        protocol.run(make_trace([gets(0xC0, 2)]))
        assert replacement.responses
