"""Unit tests for the Owner predictor (Table 3 semantics)."""

import pytest

from repro.common.params import PredictorConfig
from repro.common.types import AccessType, MEMORY_NODE
from repro.predictors.owner import OwnerPredictor

N = 16
GETS = AccessType.GETS
GETX = AccessType.GETX


@pytest.fixture
def predictor():
    return OwnerPredictor(N, PredictorConfig(n_entries=None,
                                             index_granularity=64))


class TestPrediction:
    def test_cold_prediction_is_empty(self, predictor):
        assert predictor.predict(0x40, 0, GETS).is_empty()

    def test_predicts_last_responder(self, predictor):
        predictor.train_response(0x40, 0, responder=5, access=GETS,
                                 allocate=True)
        assert predictor.predict(0x40, 0, GETS).nodes() == (5,)
        assert predictor.predict(0x40, 0, GETX).nodes() == (5,)

    def test_memory_response_clears_valid(self, predictor):
        predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        predictor.train_response(0x40, 0, MEMORY_NODE, GETS, allocate=True)
        assert predictor.predict(0x40, 0, GETS).is_empty()

    def test_external_getx_sets_owner(self, predictor):
        predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        predictor.train_external(0x40, 0, requester=9, access=GETX)
        assert predictor.predict(0x40, 0, GETS).nodes() == (9,)

    def test_external_gets_is_ignored(self, predictor):
        predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        predictor.train_external(0x40, 0, requester=9, access=GETS)
        assert predictor.predict(0x40, 0, GETS).nodes() == (5,)

    def test_external_training_does_not_allocate(self, predictor):
        predictor.train_external(0x40, 0, requester=9, access=GETX)
        assert predictor.predict(0x40, 0, GETS).is_empty()
        assert predictor.stats()["entries"] == 0

    def test_no_allocation_without_flag(self, predictor):
        predictor.train_response(0x40, 0, 5, GETS, allocate=False)
        assert predictor.predict(0x40, 0, GETS).is_empty()


class TestPairwiseScenario:
    def test_pairwise_sharing_predicted_both_ways(self):
        """Owner's design target: two processors trading one block."""
        config = PredictorConfig(n_entries=None, index_granularity=64)
        a, b = OwnerPredictor(N, config), OwnerPredictor(N, config)
        # A misses, B responds; B later GETXes and A observes.
        a.train_response(0x40, 0, responder=1, access=GETS, allocate=True)
        b.train_response(0x40, 0, responder=0, access=GETS, allocate=True)
        assert a.predict(0x40, 0, GETS).nodes() == (1,)
        assert b.predict(0x40, 0, GETS).nodes() == (0,)


class TestStructure:
    def test_entry_bits_matches_table3(self):
        predictor = OwnerPredictor(16, PredictorConfig())
        assert predictor.entry_bits() == 4 + 1  # log2(16) + valid

    def test_macroblock_indexing_shares_entry(self):
        predictor = OwnerPredictor(
            N, PredictorConfig(n_entries=None, index_granularity=1024)
        )
        predictor.train_response(0x1000, 0, 5, GETS, allocate=True)
        # Different block, same 1 KB macroblock.
        assert predictor.predict(0x13C0, 0, GETS).nodes() == (5,)

    def test_bounded_table_evicts(self):
        predictor = OwnerPredictor(
            N,
            PredictorConfig(n_entries=4, associativity=1,
                            index_granularity=64),
        )
        for i in range(16):
            predictor.train_response(i * 64, 0, 5, GETS, allocate=True)
        assert predictor.stats()["evictions"] > 0
        assert predictor.stats()["entries"] <= 4
