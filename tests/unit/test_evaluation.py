"""Unit tests for the evaluation harnesses and report rendering."""

import pytest

from repro.analysis.locality import locality_cdf
from repro.analysis.properties import workload_properties
from repro.analysis.sharing import degree_of_sharing, sharing_histogram
from repro.cache.pipeline import CollectionResult
from repro.common.params import PredictorConfig, SystemConfig
from repro.evaluation.corpus import TraceCorpus
from repro.evaluation.report import (
    format_table,
    render_degree_of_sharing,
    render_locality,
    render_runtime,
    render_sharing_histogram,
    render_tradeoff,
    render_workload_properties,
)
from repro.evaluation.runtime import evaluate_runtime, make_protocol
from repro.evaluation.tradeoff import evaluate_design_space, evaluate_protocol
from repro.protocols.directory import DirectoryProtocol
from repro.protocols.multicast import MulticastSnoopingProtocol
from repro.protocols.snooping import BroadcastSnoopingProtocol

from tests.conftest import gets, getx, make_trace


def sharing_trace(n=60):
    records = []
    for i in range(n):
        node = i % 2
        records.append(gets(0x40, node, pc=0x10))
        records.append(getx(0x40, node, pc=0x14))
    trace = make_trace(records)
    for record in trace:
        object.__setattr__(record, "instructions", 50)
    return trace


class TestEvaluateProtocol:
    def test_warmup_excluded_from_totals(self, config4):
        trace = sharing_trace()
        point = evaluate_protocol(
            DirectoryProtocol(config4), trace, warmup_fraction=0.5
        )
        assert point.misses == len(trace) // 2

    def test_rejects_bad_warmup(self, config4):
        with pytest.raises(ValueError):
            evaluate_protocol(
                DirectoryProtocol(config4), sharing_trace(),
                warmup_fraction=1.0,
            )

    def test_label_defaults_to_protocol_name(self, config4):
        point = evaluate_protocol(DirectoryProtocol(config4),
                                  sharing_trace())
        assert point.label == "directory"


class TestEvaluateDesignSpace:
    def test_baselines_plus_predictors(self, config4):
        points = evaluate_design_space(
            sharing_trace(),
            config=config4,
            predictors=("owner",),
            predictor_config=PredictorConfig(
                n_entries=None, index_granularity=64
            ),
        )
        labels = [p.label for p in points]
        assert labels == ["directory", "broadcast-snooping", "owner"]

    def test_snooping_never_indirects_and_uses_most_bandwidth(
        self, config4
    ):
        points = evaluate_design_space(
            sharing_trace(), config=config4, predictors=()
        )
        directory, snooping = points
        assert snooping.indirection_pct == 0.0
        assert (
            snooping.request_messages_per_miss
            > directory.request_messages_per_miss
        )
        assert directory.indirection_pct > 50.0


class TestEvaluateRuntime:
    def test_normalization_anchors(self, config4):
        points = evaluate_runtime(
            sharing_trace(),
            config=config4,
            predictors=(),
        )
        by_label = {p.label: p for p in points}
        assert by_label["directory"].normalized_runtime == pytest.approx(100.0)
        assert by_label["broadcast-snooping"].normalized_traffic_per_miss == (
            pytest.approx(100.0)
        )

    def test_make_protocol_dispatch(self, config4):
        assert isinstance(make_protocol("directory", config4),
                          DirectoryProtocol)
        assert isinstance(
            make_protocol("broadcast-snooping", config4),
            BroadcastSnoopingProtocol,
        )
        multicast = make_protocol("owner", config4)
        assert isinstance(multicast, MulticastSnoopingProtocol)
        assert multicast.predictor_name == "owner"


class TestCorpus:
    def test_caches_by_key(self):
        corpus = TraceCorpus()
        a = corpus.collect("barnes-hut", n_references=1500)
        b = corpus.collect("barnes-hut", n_references=1500)
        assert a is b
        c = corpus.collect("barnes-hut", n_references=1600)
        assert c is not a
        corpus.clear()
        assert corpus.collect("barnes-hut", n_references=1500) is not a

    def test_trace_shortcut(self):
        corpus = TraceCorpus()
        trace = corpus.trace("barnes-hut", n_references=1500)
        assert trace.name == "barnes-hut"


class TestReportRendering:
    def test_format_table_alignment(self):
        text = format_table(("a", "bb"), [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_all_renderers_produce_text(self, config4):
        trace = sharing_trace()
        result = CollectionResult(
            trace=trace, instructions={0: 3000, 1: 3000}, references=120
        )
        tradeoff_points = evaluate_design_space(
            trace, config=config4, predictors=()
        )
        runtime_points = evaluate_runtime(trace, config=config4,
                                          predictors=())
        renders = [
            render_workload_properties(
                [workload_properties(result, n_processors=4)]
            ),
            render_sharing_histogram([sharing_histogram(trace)]),
            render_degree_of_sharing([degree_of_sharing(trace)]),
            render_locality([locality_cdf(trace)]),
            render_tradeoff(tradeoff_points),
            render_runtime(runtime_points),
        ]
        for text in renders:
            assert "test" in text
            assert len(text.splitlines()) >= 3
