"""Unit and property tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.sets import SetAssociativeCache


def make_cache(blocks=8, assoc=2, block_size=64):
    return SetAssociativeCache(blocks * block_size, assoc, block_size)


class TestGeometry:
    def test_sets_and_capacity(self):
        cache = make_cache(blocks=8, assoc=2)
        assert cache.n_sets == 4
        assert cache.capacity_blocks() == 8

    def test_rejects_non_pow2_size(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(100, 2, 64)

    def test_rejects_indivisible_assoc(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(512, 3, 64)

    def test_rejects_nonpositive_assoc(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(512, 0, 64)


class TestBasicOperation:
    def test_insert_then_probe(self):
        cache = make_cache()
        assert not cache.probe(0x40)
        cache.insert(0x40)
        assert cache.probe(0x40)

    def test_probe_is_side_effect_free(self):
        cache = make_cache(blocks=2, assoc=2, block_size=64)
        cache.insert(0x000)  # set 0
        cache.insert(0x080)  # set 0 (2 sets? blocks=2 assoc=2 -> 1 set)
        cache.probe(0x000)
        victim = cache.insert(0x100)
        # LRU untouched by probe: 0x000 is still LRU and evicted.
        assert victim == 0x000

    def test_touch_refreshes_lru(self):
        cache = SetAssociativeCache(128, 2, 64)  # one set, 2 ways
        cache.insert(0x000)
        cache.insert(0x040)
        cache.touch(0x000)
        victim = cache.insert(0x080)
        assert victim == 0x040

    def test_insert_existing_is_touch(self):
        cache = SetAssociativeCache(128, 2, 64)
        cache.insert(0x000)
        cache.insert(0x040)
        assert cache.insert(0x000) is None
        assert cache.insert(0x080) == 0x040

    def test_invalidate(self):
        cache = make_cache()
        cache.insert(0x40)
        assert cache.invalidate(0x40)
        assert not cache.probe(0x40)
        assert not cache.invalidate(0x40)

    def test_sub_block_addresses_alias(self):
        cache = make_cache()
        cache.insert(0x43)
        assert cache.probe(0x7F)

    def test_eviction_only_within_set(self):
        cache = make_cache(blocks=8, assoc=2)  # 4 sets
        # Fill set 0 beyond capacity; other sets untouched.
        sets0 = [0x000, 0x100, 0x200]
        victims = [cache.insert(a) for a in sets0]
        assert victims == [None, None, 0x000]


class TestLruProperties:
    @settings(max_examples=50)
    @given(st.lists(st.integers(0, 31), min_size=1, max_size=200))
    def test_occupancy_never_exceeds_capacity(self, block_ids):
        cache = make_cache(blocks=8, assoc=2)
        for block_id in block_ids:
            cache.insert(block_id * 64)
        assert cache.occupied_blocks() <= cache.capacity_blocks()

    @settings(max_examples=50)
    @given(st.lists(st.integers(0, 31), min_size=1, max_size=200))
    def test_most_recent_insert_always_present(self, block_ids):
        cache = make_cache(blocks=8, assoc=2)
        for block_id in block_ids:
            cache.insert(block_id * 64)
        assert cache.probe(block_ids[-1] * 64)

    @settings(max_examples=50)
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=100))
    def test_victim_was_resident(self, block_ids):
        cache = make_cache(blocks=4, assoc=4)  # fully associative
        resident = set()
        for block_id in block_ids:
            address = block_id * 64
            victim = cache.insert(address)
            if victim is not None:
                assert victim in resident
                resident.discard(victim)
            resident.add(address)
        assert cache.occupied_blocks() == len(resident)
