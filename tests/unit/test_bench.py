"""Unit tests for the perf microbenchmark suite and sweep perf stats."""

import json

import pytest

from repro.evaluation import bench
from repro.experiment import ExperimentSpec, PerfStats, Runner
from repro.workloads import create_workload

N_REFERENCES = 1_500


@pytest.fixture(scope="module")
def small_trace():
    return create_workload("barnes-hut", seed=3).collect(N_REFERENCES).trace


class TestBenchSuite:
    def test_suite_reports_every_benchmark(self, small_trace):
        report = bench.run_suite(
            small_trace, "barnes-hut", N_REFERENCES, 3, repeats=1
        )
        names = [b["name"] for b in report["benchmarks"]]
        assert "fig5_tradeoff" in names
        assert "protocol_directory" in names
        assert "timing_runtime" in names
        assert "timing_constrained_bw" in names
        for entry in report["benchmarks"]:
            assert entry["records"] > 0
            assert entry["records_per_sec"] > 0
            assert entry["calibrated"] > 0

    def test_report_round_trips_as_json(self, small_trace, tmp_path):
        report = bench.run_suite(
            small_trace, "barnes-hut", N_REFERENCES, 3, repeats=1
        )
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(report))
        assert bench.load_report(path) == report

    def test_baseline_speedup_only_on_reference_config(self, small_trace):
        report = bench.run_suite(
            small_trace, "barnes-hut", N_REFERENCES, 3, repeats=1
        )
        # Different workload/refs than the pre-columnar measurement:
        # no speedup claim is attached.
        assert "pre_columnar_baseline" not in report

    def test_render_report_is_textual(self, small_trace):
        report = bench.run_suite(
            small_trace, "barnes-hut", N_REFERENCES, 3, repeats=1
        )
        text = bench.render_report(report)
        assert "fig5_tradeoff" in text
        assert "records/sec" in text
        assert "thread scaling" in text

    def test_thread_entries_report_parallel_efficiency(self, small_trace):
        report = bench.run_suite(
            small_trace, "barnes-hut", N_REFERENCES, 3, repeats=1
        )
        entries = {b["name"]: b for b in report["benchmarks"]}
        for name, execution in bench.SWEEP_EXECUTION_ENTRIES.items():
            entry = entries[name]
            assert entry["executor"] == execution["executor"]
            assert entry["threads"] == execution["threads"]
            assert entry["backend"] == report["columns_backend"]
        efficiency = report["parallel_efficiency"]
        assert efficiency["threads"] == bench.SWEEP_THREADS
        assert efficiency["speedup"] > 0
        # speedup is rounded to 2 decimals and efficiency to 3, so
        # the two can disagree by up to 0.005 / SWEEP_THREADS.
        assert efficiency["efficiency"] == pytest.approx(
            efficiency["speedup"] / bench.SWEEP_THREADS, abs=2.5e-3
        )


class TestBaselineCheck:
    def _report(self, calibrated):
        return {
            "benchmarks": [
                {"name": "fig5_tradeoff", "calibrated": calibrated}
            ]
        }

    def test_passes_within_tolerance(self):
        failures = bench.check_against_baseline(
            self._report(8.0), self._report(10.0), tolerance=0.30
        )
        assert failures == []

    def test_fails_beyond_tolerance(self):
        failures = bench.check_against_baseline(
            self._report(6.0), self._report(10.0), tolerance=0.30
        )
        assert len(failures) == 1
        assert "fig5_tradeoff" in failures[0]

    def test_missing_benchmark_fails(self):
        failures = bench.check_against_baseline(
            {"benchmarks": []}, self._report(10.0)
        )
        assert failures and "missing" in failures[0]

    def test_faster_run_passes(self):
        assert not bench.check_against_baseline(
            self._report(20.0), self._report(10.0)
        )

    def test_multi_thread_entries_not_gated(self):
        # Thread-scaling throughput depends on the machine's core
        # count, so a baseline from a different topology must not
        # gate it (the CI parallel_efficiency assertion does).
        baseline = {
            "benchmarks": [
                {"name": "sweep_threads_4", "calibrated": 10.0,
                 "threads": 4},
                {"name": "sweep_threads_1", "calibrated": 10.0,
                 "threads": 1},
            ]
        }
        report = {
            "benchmarks": [
                {"name": "sweep_threads_4", "calibrated": 1.0,
                 "threads": 4},
                {"name": "sweep_threads_1", "calibrated": 9.0,
                 "threads": 1},
            ]
        }
        assert bench.check_against_baseline(report, baseline) == []


class TestSweepPerfStats:
    def test_runner_reports_throughput(self):
        spec = ExperimentSpec(
            workloads=("barnes-hut",),
            kind="tradeoff",
            n_references=N_REFERENCES,
            policies=("owner",),
        )
        results = Runner().run(spec)
        # 1 workload x (2 baselines + 1 policy) replays of the trace.
        assert results.perf.records_processed > 0
        assert results.perf.records_processed % 3 == 0
        assert results.perf.wall_seconds > 0
        assert results.perf.records_per_sec > 0

    def test_perf_excluded_from_serialization_and_equality(self):
        spec = ExperimentSpec(
            workloads=("barnes-hut",),
            kind="tradeoff",
            n_references=N_REFERENCES,
            policies=("owner",),
        )
        results = Runner().run(spec)
        data = results.to_dict()
        assert "perf" not in data
        from repro.experiment import ResultSet

        rebuilt = ResultSet.from_dict(data)
        assert rebuilt.perf == PerfStats()  # not carried through JSON
        assert rebuilt == results  # equality ignores perf/cache stats

    def test_perf_stats_str_and_rates(self):
        stats = PerfStats(records_processed=1000, wall_seconds=2.0)
        assert stats.records_per_sec == 500.0
        assert "records/sec" in str(stats)
        assert PerfStats().records_per_sec == 0.0
