"""Unit tests for the Section 2 analysis modules."""

import pytest

from repro.analysis.locality import locality_cdf
from repro.analysis.properties import workload_properties
from repro.analysis.sharing import degree_of_sharing, sharing_histogram
from repro.cache.pipeline import CollectionResult

from tests.conftest import gets, getx, make_trace


def pingpong_trace(n_rounds=10):
    """Two processors trading one block: all sharing misses."""
    records = []
    for i in range(n_rounds):
        node = i % 2
        records.append(gets(0x40, node, pc=0x10))
        records.append(getx(0x40, node, pc=0x14))
    return make_trace(records)


class TestSharingHistogram:
    def test_cold_reads_fall_in_bin_zero(self):
        trace = make_trace([gets(64 * i, 0) for i in range(10)])
        histogram = sharing_histogram(trace, warmup_fraction=0.0)
        assert histogram.read_pct[0] == pytest.approx(100.0)
        assert histogram.multi_recipient_pct == 0.0

    def test_pingpong_needs_one_other(self):
        histogram = sharing_histogram(pingpong_trace(), warmup_fraction=0.2)
        assert histogram.read_pct[1] + histogram.write_pct[1] > 90.0

    def test_wide_invalidation_lands_in_three_plus(self):
        records = [gets(0x40, node) for node in range(4)]
        records.append(getx(0x40, 0))
        histogram = sharing_histogram(
            make_trace(records), warmup_fraction=0.0
        )
        assert histogram.write_pct[3] > 0

    def test_percentages_sum_to_100(self):
        histogram = sharing_histogram(pingpong_trace(), warmup_fraction=0.0)
        total = sum(
            histogram.read_pct[b] + histogram.write_pct[b]
            for b in (0, 1, 2, 3)
        )
        assert total == pytest.approx(100.0)


class TestDegreeOfSharing:
    def test_private_blocks_have_degree_one(self):
        trace = make_trace([gets(64 * i, 0) for i in range(5)])
        degree = degree_of_sharing(trace)
        assert degree.blocks_pct[1] == pytest.approx(100.0)

    def test_shared_block_counts_every_toucher(self):
        trace = make_trace([gets(0x40, node) for node in range(4)])
        degree = degree_of_sharing(trace)
        assert degree.blocks_pct[4] == pytest.approx(100.0)

    def test_miss_weighting(self):
        # One private block with 9 misses, one 2-shared with 1 miss each.
        records = [gets(0x40, 0, pc=i) for i in range(9)]
        records += [gets(0x80, 0), gets(0x80, 1)]
        degree = degree_of_sharing(make_trace(records))
        assert degree.blocks_pct[1] == pytest.approx(50.0)
        assert degree.misses_pct[1] == pytest.approx(100 * 9 / 11)
        assert degree.misses_cumulative(2) == pytest.approx(100.0)

    def test_cumulative_is_monotone(self):
        degree = degree_of_sharing(pingpong_trace())
        values = [degree.misses_cumulative(n) for n in range(1, 17)]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(100.0)

    def test_block_size_honours_configured_granularity(self):
        # Two 64 B blocks inside one 128 B block, touched by two
        # different processors: at the default granularity they are
        # two degree-1 blocks, at block_size=128 one degree-2 block.
        trace = make_trace([gets(0x00, 0), gets(0x40, 1)])
        default = degree_of_sharing(trace)
        assert default.unique_blocks == 2
        assert default.blocks_pct[1] == pytest.approx(100.0)
        coarse = degree_of_sharing(trace, block_size=128)
        assert coarse.unique_blocks == 1
        assert coarse.blocks_pct[2] == pytest.approx(100.0)

    def test_block_size_default_aligned_with_sharing_histogram(self):
        # Both Figure 2 and Figure 3 default to the same granularity,
        # and both accept the system's configured block size.
        trace = pingpong_trace()
        fig2 = sharing_histogram(
            trace, warmup_fraction=0.0, block_size=128
        )
        fig3 = degree_of_sharing(trace, block_size=128)
        assert fig2.total_misses == len(trace)
        assert fig3.unique_blocks == 1


class TestLocality:
    def test_hot_block_dominates_cdf(self):
        trace = pingpong_trace(50)
        cdf = locality_cdf(trace, kind="block", warmup_fraction=0.0)
        assert cdf.coverage(1) == pytest.approx(100.0)
        assert cdf.n_entities == 1

    def test_macroblock_aggregates_blocks(self):
        records = []
        for i in range(8):  # 8 blocks in one 1 KB macroblock
            records.append(getx(0x1000 + 64 * i, 0, pc=0x10))
            records.append(gets(0x1000 + 64 * i, 1, pc=0x14))
        trace = make_trace(records)
        blocks = locality_cdf(trace, kind="block", warmup_fraction=0.0)
        macros = locality_cdf(trace, kind="macroblock", warmup_fraction=0.0)
        assert blocks.n_entities == 8
        assert macros.n_entities == 1

    def test_pc_kind(self):
        cdf = locality_cdf(pingpong_trace(20), kind="pc",
                           warmup_fraction=0.0)
        assert cdf.n_entities == 2  # one read PC, one write PC

    def test_only_c2c_misses_counted(self):
        trace = make_trace([gets(64 * i, 0) for i in range(10)])
        cdf = locality_cdf(trace, kind="block", warmup_fraction=0.0)
        assert cdf.total == 0
        assert cdf.coverage(10) == 0.0

    def test_entities_for_coverage(self):
        cdf = locality_cdf(pingpong_trace(50), kind="block",
                           warmup_fraction=0.0)
        assert cdf.entities_for_coverage(50.0) == 1

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            locality_cdf(pingpong_trace(), kind="galaxy")


class TestWorkloadProperties:
    def test_measures_pingpong(self):
        trace = pingpong_trace(25)
        result = CollectionResult(
            trace=trace,
            instructions={0: 5000, 1: 5000},
            references=len(trace),
        )
        properties = workload_properties(result, n_processors=4,
                                         warmup_fraction=0.2)
        assert properties.workload == "test"
        assert properties.footprint_blocks == 1
        assert properties.footprint_macroblocks == 1
        assert properties.static_miss_pcs == 2
        assert properties.total_misses == 50
        assert properties.directory_indirection_pct > 90.0
        assert properties.misses_per_kilo_instruction > 0
