"""Unit tests for the broadcast snooping protocol model."""

import pytest

from repro.common.params import SystemConfig
from repro.protocols.base import LatencyClass
from repro.protocols.snooping import BroadcastSnoopingProtocol

from tests.conftest import gets, getx, make_trace


@pytest.fixture
def protocol(config4):
    return BroadcastSnoopingProtocol(config4)


class TestSnooping:
    def test_no_indirections_ever(self, protocol):
        trace = make_trace(
            [getx(0x40, 0), gets(0x40, 1), getx(0x40, 2), gets(0x80, 3)]
        )
        totals = protocol.run(trace)
        assert totals.indirections == 0
        assert totals.indirection_pct == 0.0

    def test_request_fanout_is_all_others(self, protocol, config4):
        protocol.handle(gets(0x40, 0))
        assert (
            protocol.totals.request_messages == config4.n_processors - 1
        )

    def test_memory_vs_c2c_latency(self, protocol):
        cold = protocol.handle(gets(0x40, 0))
        assert cold.latency_class is LatencyClass.MEMORY
        protocol.handle(getx(0x80, 1))
        c2c = protocol.handle(gets(0x80, 2))
        assert c2c.latency_class is LatencyClass.CACHE_TO_CACHE_DIRECT

    def test_traffic_bytes(self, protocol, config4):
        outcome = protocol.handle(gets(0x40, 0))
        expected = (config4.n_processors - 1) * 8 + 72
        assert outcome.traffic_bytes(protocol.traffic) == expected

    def test_sixteen_node_fanout(self):
        protocol = BroadcastSnoopingProtocol(SystemConfig())
        outcome = protocol.handle(gets(0x40, 0))
        assert outcome.request_messages == 15

    def test_reset_totals(self, protocol):
        protocol.handle(gets(0x40, 0))
        protocol.reset_totals()
        assert protocol.totals.misses == 0
        # Coherence state survives the reset (warmup protocol).
        assert protocol.state.lookup(0x40).sharers == {0}
