"""Unit tests for the predictor accuracy analysis."""

import pytest

from repro.analysis.accuracy import (
    AccuracyReport,
    PredictionOutcome,
    prediction_accuracy,
)
from repro.common.params import PredictorConfig, SystemConfig

from tests.conftest import gets, getx, make_trace


def pingpong_trace(n_rounds=40, n_processors=16):
    records = []
    for i in range(n_rounds):
        node = i % 2
        records.append(gets(0x1000, node, pc=0x10))
        records.append(getx(0x1000, node, pc=0x14))
    return make_trace(records, n_processors=n_processors)


UNBOUNDED = PredictorConfig(n_entries=None, index_granularity=64)


class TestAccuracyReport:
    def test_empty_report_is_vacuously_perfect(self):
        report = AccuracyReport(policy="x", workload="y")
        assert report.coverage_pct == 100.0
        assert report.precision_pct == 100.0
        assert report.outcome_pct(PredictionOutcome.EXACT) == 0.0

    def test_percentages(self):
        report = AccuracyReport(
            policy="x",
            workload="y",
            predictions=10,
            required_nodes=8,
            covered_nodes=6,
            predicted_extra_nodes=12,
            useful_extra_nodes=6,
        )
        report.outcomes[PredictionOutcome.EXACT] = 5
        assert report.coverage_pct == pytest.approx(75.0)
        assert report.precision_pct == pytest.approx(50.0)
        assert report.outcome_pct(PredictionOutcome.EXACT) == 50.0


class TestPredictionAccuracy:
    def test_broadcast_has_full_coverage_low_precision(self):
        report = prediction_accuracy(
            pingpong_trace(), "broadcast", predictor_config=UNBOUNDED
        )
        assert report.coverage_pct == 100.0
        assert report.precision_pct < 25.0
        assert report.outcomes[PredictionOutcome.UNDER] == 0

    def test_minimal_has_zero_coverage(self):
        report = prediction_accuracy(
            pingpong_trace(), "minimal", predictor_config=UNBOUNDED
        )
        assert report.coverage_pct == 0.0
        # Everything required was missed entirely.
        assert report.outcomes[PredictionOutcome.OVER] == 0
        assert report.outcomes[PredictionOutcome.EXACT] == 0

    def test_oracle_is_exact(self):
        report = prediction_accuracy(
            pingpong_trace(), "oracle", predictor_config=UNBOUNDED
        )
        assert report.coverage_pct == 100.0
        assert report.precision_pct == 100.0
        assert report.outcomes[PredictionOutcome.UNDER] == 0
        assert report.outcomes[PredictionOutcome.OVER] == 0
        assert report.outcomes[PredictionOutcome.MIXED] == 0

    def test_owner_learns_pairwise_pattern(self):
        report = prediction_accuracy(
            pingpong_trace(200),
            "owner",
            predictor_config=UNBOUNDED,
            warmup_fraction=0.5,
        )
        # Steady-state pairwise sharing is Owner's design target.
        assert report.coverage_pct > 90.0
        assert report.precision_pct > 90.0

    def test_counts_only_post_warmup(self):
        trace = pingpong_trace(40)
        report = prediction_accuracy(
            trace, "minimal", predictor_config=UNBOUNDED,
            warmup_fraction=0.5,
        )
        assert report.predictions == len(trace) // 2
