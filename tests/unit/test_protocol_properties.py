"""Property-based cross-protocol invariants on random traces."""

from hypothesis import given, settings, strategies as st

from repro.common.params import PredictorConfig, SystemConfig
from repro.protocols.directory import DirectoryProtocol
from repro.protocols.multicast import MulticastSnoopingProtocol
from repro.protocols.snooping import BroadcastSnoopingProtocol

from tests.conftest import gets, getx, make_trace

N = 8
CONFIG = SystemConfig(n_processors=N)
UNBOUNDED = PredictorConfig(n_entries=None, index_granularity=64)

random_traces = st.lists(
    st.tuples(
        st.integers(0, N - 1),   # requester
        st.integers(0, 15),      # block id
        st.booleans(),           # is_write
        st.integers(0, 3),       # pc site
    ),
    min_size=1,
    max_size=120,
).map(
    lambda ops: make_trace(
        [
            getx(block * 64, node, pc=0x100 + pc * 4)
            if is_write
            else gets(block * 64, node, pc=0x100 + pc * 4)
            for node, block, is_write, pc in ops
        ],
        n_processors=N,
    )
)


class TestSnoopingInvariants:
    @settings(max_examples=40, deadline=None)
    @given(random_traces)
    def test_constant_fanout_and_zero_indirection(self, trace):
        protocol = BroadcastSnoopingProtocol(CONFIG)
        totals = protocol.run(trace)
        assert totals.indirections == 0
        assert totals.request_messages == (N - 1) * len(trace)
        assert totals.data_messages == len(trace)


class TestAccountingInvariants:
    @settings(max_examples=40, deadline=None)
    @given(random_traces)
    def test_traffic_bytes_decompose(self, trace):
        protocol = DirectoryProtocol(CONFIG)
        totals = protocol.run(trace)
        control = (
            totals.request_messages
            + totals.forward_messages
            + totals.retry_messages
        )
        assert totals.traffic_bytes == control * 8 + totals.data_messages * 72

    @settings(max_examples=40, deadline=None)
    @given(random_traces)
    def test_percentages_bounded(self, trace):
        protocol = MulticastSnoopingProtocol(CONFIG, "group", UNBOUNDED)
        totals = protocol.run(trace)
        assert 0.0 <= totals.indirection_pct <= 100.0
        assert totals.request_messages_per_miss >= 0.0
        assert totals.misses == len(trace)


class TestCrossProtocolInvariants:
    @settings(max_examples=30, deadline=None)
    @given(random_traces)
    def test_multicast_minimal_never_indirects_more_than_directory(
        self, trace
    ):
        """The home node's cache rides free in multicast snooping, so
        multicast with the minimal predictor can only beat the
        directory-metric indirection count, never exceed it."""
        directory = DirectoryProtocol(CONFIG)
        multicast = MulticastSnoopingProtocol(CONFIG, "minimal", UNBOUNDED)
        directory_totals = directory.run(trace)
        multicast_totals = multicast.run(trace)
        assert (
            multicast_totals.indirections <= directory_totals.indirections
        )

    @settings(max_examples=30, deadline=None)
    @given(random_traces)
    def test_oracle_never_retries_and_uses_least_bandwidth(self, trace):
        oracle = MulticastSnoopingProtocol(CONFIG, "oracle", UNBOUNDED)
        broadcast = MulticastSnoopingProtocol(CONFIG, "broadcast",
                                              UNBOUNDED)
        oracle_totals = oracle.run(trace)
        broadcast_totals = broadcast.run(trace)
        assert oracle_totals.indirections == 0
        assert oracle_totals.retries == 0
        assert (
            oracle_totals.request_messages
            <= broadcast_totals.request_messages
        )

    @settings(max_examples=30, deadline=None)
    @given(random_traces)
    def test_all_protocols_agree_on_final_state(self, trace):
        protocols = [
            BroadcastSnoopingProtocol(CONFIG),
            DirectoryProtocol(CONFIG),
            MulticastSnoopingProtocol(CONFIG, "owner", UNBOUNDED),
        ]
        for protocol in protocols:
            protocol.run(trace)
        blocks = {record.block(64) for record in trace}
        reference = protocols[0].state
        for protocol in protocols[1:]:
            for block in blocks:
                assert protocol.state.lookup(block).owner == (
                    reference.lookup(block).owner
                )
                assert protocol.state.lookup(block).sharers == (
                    reference.lookup(block).sharers
                )
