"""Unit tests for trace records, containers, IO, and stats."""

import pytest
from hypothesis import given, strategies as st

from repro.common.types import AccessType
from repro.trace import (
    Trace,
    TraceRecord,
    compute_trace_stats,
    read_trace,
    write_trace,
)
from repro.trace.trace import merge_round_robin

from tests.conftest import gets, getx, make_trace


class TestTraceRecord:
    def test_block_and_macroblock(self):
        record = gets(0x1234, 1)
        assert record.block(64) == 0x1200
        assert record.macroblock(1024) == 0x1000

    def test_read_write_flags(self):
        assert gets(0, 0).is_read and not gets(0, 0).is_write
        assert getx(0, 0).is_write and not getx(0, 0).is_read

    def test_rejects_negative_fields(self):
        with pytest.raises(ValueError):
            TraceRecord(-1, 0, 0, AccessType.GETS)
        with pytest.raises(ValueError):
            TraceRecord(0, -1, 0, AccessType.GETS)
        with pytest.raises(ValueError):
            TraceRecord(0, 0, -1, AccessType.GETS)
        with pytest.raises(ValueError):
            TraceRecord(0, 0, 0, AccessType.GETS, instructions=-1)

    def test_frozen(self):
        record = gets(0x40, 0)
        with pytest.raises(Exception):
            record.address = 0


class TestTraceContainer:
    def test_append_and_len(self):
        trace = make_trace([gets(0x40, 0)])
        trace.append(getx(0x80, 1))
        assert len(trace) == 2

    def test_rejects_out_of_range_requester(self):
        trace = make_trace([], n_processors=2)
        with pytest.raises(ValueError):
            trace.append(gets(0x40, 5))

    def test_rejects_non_record(self):
        trace = make_trace([])
        with pytest.raises(TypeError):
            trace.append("not a record")

    def test_split_warmup(self):
        records = [gets(64 * i, i % 4) for i in range(10)]
        warm, rest = make_trace(records).split_warmup(3)
        assert len(warm) == 3 and len(rest) == 7
        assert rest[0] == records[3]

    def test_reads_writes_filters(self):
        trace = make_trace([gets(0x40, 0), getx(0x80, 1), gets(0xC0, 2)])
        assert len(trace.reads()) == 2
        assert len(trace.writes()) == 1

    def test_by_processor(self):
        trace = make_trace([gets(0x40, 0), getx(0x80, 1), gets(0xC0, 0)])
        assert len(trace.by_processor(0)) == 2

    def test_slicing_returns_trace(self):
        trace = make_trace([gets(64 * i, 0) for i in range(5)])
        sliced = trace[1:3]
        assert isinstance(sliced, Trace)
        assert len(sliced) == 2

    def test_unique_blocks_and_pcs(self):
        trace = make_trace(
            [gets(0x40, 0, pc=0x10), gets(0x44, 1, pc=0x10), gets(0x80, 2, pc=0x14)]
        )
        assert trace.unique_blocks(64) == 2
        assert trace.unique_pcs() == 2


class TestMergeRoundRobin:
    def test_interleaves(self):
        a = make_trace([gets(0x40, 0), gets(0x80, 0)])
        b = make_trace([getx(0xC0, 1)])
        merged = merge_round_robin([a, b])
        assert [r.requester for r in merged] == [0, 1, 0]

    def test_rejects_empty_list(self):
        with pytest.raises(ValueError):
            merge_round_robin([])

    def test_rejects_mismatched_processor_counts(self):
        with pytest.raises(ValueError):
            merge_round_robin(
                [make_trace([], n_processors=2), make_trace([], n_processors=4)]
            )


class TestTraceIo:
    def test_round_trip(self, tmp_path):
        trace = make_trace(
            [
                TraceRecord(0x1240, 0xF00, 2, AccessType.GETS, 17),
                TraceRecord(0x1280, 0xF04, 3, AccessType.GETX, 0),
            ],
            name="demo",
        )
        path = tmp_path / "t.trace"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert loaded.name == "demo"
        assert loaded.n_processors == trace.n_processors
        assert list(loaded) == list(trace)

    def test_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not a trace\n")
        with pytest.raises(ValueError):
            read_trace(path)

    def test_rejects_malformed_record(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# repro-trace v1 n_processors=4 name=-\n1 2 3\n")
        with pytest.raises(ValueError):
            read_trace(path)

    def test_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "c.trace"
        path.write_text(
            "# repro-trace v1 n_processors=4 name=-\n"
            "\n# comment\n40 10 1 GETS 5\n"
        )
        loaded = read_trace(path)
        assert len(loaded) == 1
        assert loaded[0].instructions == 5

    @given(
        tuples=st.lists(
            st.tuples(
                st.integers(0, 2**40),
                st.integers(0, 2**32),
                st.integers(0, 15),
                st.sampled_from([AccessType.GETS, AccessType.GETX]),
                st.integers(0, 10**6),
            ),
            max_size=30,
        )
    )
    def test_round_trip_property(self, tuples):
        import tempfile, os
        records = [TraceRecord(*t) for t in tuples]
        trace = Trace(records, n_processors=16, name="prop")
        handle, path = tempfile.mkstemp(suffix=".trace")
        os.close(handle)
        try:
            write_trace(trace, path)
            assert list(read_trace(path)) == records
        finally:
            os.unlink(path)


class TestTraceStats:
    def test_counts(self):
        trace = make_trace(
            [gets(0x40, 0), getx(0x80, 1), gets(0x40, 2), getx(0x4000, 1)]
        )
        stats = compute_trace_stats(trace)
        assert stats.n_records == 4
        assert stats.n_reads == 2 and stats.n_writes == 2
        assert stats.read_fraction == pytest.approx(0.5)
        assert stats.unique_blocks == 3
        assert stats.unique_macroblocks == 2
        assert stats.per_processor == {0: 1, 1: 2, 2: 1}

    def test_footprints(self):
        trace = make_trace([gets(0x40, 0), gets(0x4000, 1)])
        stats = compute_trace_stats(trace)
        assert stats.footprint_bytes == 2 * 64
        assert stats.macroblock_footprint_bytes == 2 * 1024

    def test_empty_trace(self):
        stats = compute_trace_stats(make_trace([]))
        assert stats.n_records == 0
        assert stats.read_fraction == 0.0


class TestTraceMemoLock:
    def test_concurrent_memoization_computes_once(self):
        # Threaded sweep cells derive columns from one shared trace;
        # the per-trace lock must collapse a thundering herd onto a
        # single factory call with every caller seeing that object.
        import concurrent.futures
        import threading

        trace = make_trace(
            [gets(0x40 * i, i % 4) for i in range(64)]
        )
        calls = []
        gate = threading.Barrier(8)

        def factory():
            calls.append(1)
            return [record.address for record in trace]

        def worker():
            gate.wait()
            return trace.memo(("test", "shared"), factory)

        with concurrent.futures.ThreadPoolExecutor(8) as pool:
            results = [f.result() for f in
                       [pool.submit(worker) for _ in range(8)]]
        assert len(calls) == 1
        assert all(r is results[0] for r in results)

    def test_concurrent_block_keys_no_torn_cache(self):
        import concurrent.futures

        trace = make_trace(
            [gets(0x40 * i, i % 4) for i in range(256)]
        )
        expected = list(trace.block_keys(64))
        with concurrent.futures.ThreadPoolExecutor(8) as pool:
            futures = [
                pool.submit(trace.block_keys, 64) for _ in range(32)
            ]
            views = [f.result() for f in futures]
        assert all(list(view) == expected for view in views)
        # One cached object serves every thread.
        assert len({id(view) for view in views}) == 1

    def test_memo_reentrant_from_factory(self):
        # Memo factories call other memoized accessors (derived
        # columns pull block keys); the per-trace lock is reentrant
        # so that nesting cannot deadlock.
        trace = make_trace([gets(0x40, 0), getx(0x80, 1)])

        def factory():
            return sum(trace.block_keys(64))

        assert trace.memo(("test", "nested"), factory) == sum(
            trace.block_keys(64)
        )
