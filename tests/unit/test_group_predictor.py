"""Unit tests for the Group predictor (per-processor counters)."""

import pytest

from repro.common.params import PredictorConfig
from repro.common.types import AccessType, MEMORY_NODE
from repro.predictors.group import GroupPredictor

N = 16
GETS = AccessType.GETS
GETX = AccessType.GETX


def make(rollover_period=32, train_down=True):
    return GroupPredictor(
        N,
        PredictorConfig(n_entries=None, index_granularity=64),
        rollover_period=rollover_period,
        train_down=train_down,
    )


class TestTraining:
    def test_cold_is_minimal(self):
        assert make().predict(0x40, 0, GETS).is_empty()

    def test_node_needs_two_trainings_to_appear(self):
        predictor = make()
        predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        assert predictor.predict(0x40, 0, GETS).is_empty()
        predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        assert predictor.predict(0x40, 0, GETS).nodes() == (5,)

    def test_learns_a_group(self):
        predictor = make()
        for node in (2, 7, 11):
            for _ in range(2):
                predictor.train_external(0x40, 0, node, GETX)
        # External training never allocates; allocate via a response.
        assert predictor.predict(0x40, 0, GETS).is_empty()
        predictor.train_response(0x40, 0, 2, GETS, allocate=True)
        predictor.train_response(0x40, 0, 2, GETS, allocate=True)
        for node in (7, 11):
            for _ in range(2):
                predictor.train_external(0x40, 0, node, GETX)
        prediction = predictor.predict(0x40, 0, GETX)
        assert set(prediction) == {2, 7, 11}

    def test_external_reads_train(self):
        """Readers must enter the group so upgrades can invalidate them."""
        predictor = make()
        predictor.train_response(0x40, 0, 3, GETS, allocate=True)
        predictor.train_external(0x40, 0, 9, GETS)
        predictor.train_external(0x40, 0, 9, GETS)
        assert 9 in predictor.predict(0x40, 0, GETX)

    def test_memory_response_trains_nothing(self):
        predictor = make()
        predictor.train_response(0x40, 0, MEMORY_NODE, GETS, allocate=True)
        predictor.train_response(0x40, 0, MEMORY_NODE, GETS, allocate=True)
        assert predictor.predict(0x40, 0, GETS).is_empty()


class TestRollover:
    def test_rollover_decrements_inactive_nodes(self):
        predictor = make(rollover_period=4)
        predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        assert predictor.predict(0x40, 0, GETS).nodes() == (5,)
        # Train other nodes enough to roll the entry over repeatedly;
        # node 5 receives no more training and decays out.
        for _ in range(4):
            for node in (1, 2):
                predictor.train_external(0x40, 0, node, GETX)
        assert 5 not in predictor.predict(0x40, 0, GETS)

    def test_train_down_disabled_keeps_stale_nodes(self):
        predictor = make(rollover_period=4, train_down=False)
        predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        for _ in range(8):
            for node in (1, 2):
                predictor.train_external(0x40, 0, node, GETX)
        assert 5 in predictor.predict(0x40, 0, GETS)  # sticky ablation

    def test_counters_never_negative(self):
        predictor = make(rollover_period=2)
        for _ in range(50):
            predictor.train_external(0x40, 0, 1, GETX)
        predictor.train_response(0x40, 0, 1, GETS, allocate=True)
        prediction = predictor.predict(0x40, 0, GETS)
        assert set(prediction) <= {1}


class TestStructure:
    def test_entry_bits_matches_table3(self):
        assert make().entry_bits() == 2 * N + 5

    def test_prediction_is_subset_of_nodes(self):
        predictor = make()
        predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        for node in range(N):
            predictor.train_external(0x40, 0, node, GETX)
            predictor.train_external(0x40, 0, node, GETX)
        prediction = predictor.predict(0x40, 0, GETX)
        assert prediction.count() <= N


class TestCounterWidth:
    def test_one_bit_flips_on_single_event(self):
        predictor = GroupPredictor(
            N,
            PredictorConfig(n_entries=None, index_granularity=64),
            counter_bits=1,
        )
        predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        assert predictor.predict(0x40, 0, GETS).nodes() == (5,)

    def test_three_bit_needs_more_evidence(self):
        predictor = GroupPredictor(
            N,
            PredictorConfig(n_entries=None, index_granularity=64),
            counter_bits=3,
        )
        for _ in range(3):
            predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        assert predictor.predict(0x40, 0, GETS).is_empty()
        predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        assert predictor.predict(0x40, 0, GETS).nodes() == (5,)

    def test_entry_bits_scale_with_width(self):
        for bits in (1, 2, 3):
            predictor = GroupPredictor(
                N, PredictorConfig(), counter_bits=bits
            )
            assert predictor.entry_bits() == bits * N + 5

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            GroupPredictor(N, PredictorConfig(), counter_bits=0)
        with pytest.raises(ValueError):
            GroupPredictor(N, PredictorConfig(), rollover_period=0)
