"""Unit tests for address/type helpers."""

import pytest

from repro.common.types import (
    AccessType,
    MEMORY_NODE,
    block_address,
    home_node,
    macroblock_address,
)


class TestAccessType:
    def test_gets_is_read(self):
        assert AccessType.GETS.is_read
        assert not AccessType.GETS.is_write

    def test_getx_is_write(self):
        assert AccessType.GETX.is_write
        assert not AccessType.GETX.is_read

    def test_values_round_trip(self):
        assert AccessType("GETS") is AccessType.GETS
        assert AccessType("GETX") is AccessType.GETX


class TestAlignment:
    def test_block_alignment(self):
        assert block_address(0x1234, 64) == 0x1200
        assert block_address(0x1200, 64) == 0x1200

    def test_macroblock_alignment(self):
        assert macroblock_address(0x1234, 1024) == 0x1000

    def test_block_alignment_is_idempotent(self):
        once = block_address(0xDEADBEEF, 64)
        assert block_address(once, 64) == once

    @pytest.mark.parametrize("bad", [0, 3, 63, -64])
    def test_rejects_non_power_of_two(self, bad):
        with pytest.raises(ValueError):
            block_address(0x1000, bad)


class TestHomeNode:
    def test_home_is_stable_within_block(self):
        assert home_node(0x1000, 16, 64) == home_node(0x103F, 16, 64)

    def test_home_changes_across_blocks(self):
        homes = {home_node(64 * i, 16, 64) for i in range(16)}
        assert homes == set(range(16))

    def test_home_in_range(self):
        for addr in range(0, 1 << 16, 4096):
            assert 0 <= home_node(addr, 16, 64) < 16

    def test_memory_node_is_not_a_processor(self):
        assert MEMORY_NODE < 0
