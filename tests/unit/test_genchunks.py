"""Unit tests for the batched generation engine."""

import pytest

from repro.cache.pipeline import TraceCollector
from repro.cache.reference import MemoryReference
from repro.trace import columns
from repro.workloads import create_workload
from repro.workloads.genchunks import (
    _ZipfThresholds,
    _draws53_py,
    chunks_from_references,
)

HAS_NUMPY = columns._import_numpy() is not None


class TestCounterRng:
    def test_draws_are_53_bit_and_deterministic(self):
        draws = _draws53_py(12345, 0, 100)
        assert draws == _draws53_py(12345, 0, 100)
        assert all(0 <= d < 1 << 53 for d in draws)

    def test_draws_are_position_addressable(self):
        whole = _draws53_py(999, 0, 50)
        assert whole[20:30] == _draws53_py(999, 20, 10)

    def test_keys_decorrelate_streams(self):
        assert _draws53_py(1, 0, 20) != _draws53_py(2, 0, 20)

    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
    def test_numpy_draws_match_pure_python(self):
        import numpy

        from repro.workloads.genchunks import _draws53_np

        key = (1 << 63) + 12345  # exercises uint64 wraparound
        assert _draws53_np(numpy, key, 7, 64).tolist() == _draws53_py(
            key, 7, 64
        )


class TestZipfThresholds:
    def test_ranks_cover_the_range(self):
        table = _ZipfThresholds(8, 1.0)
        ranks = {
            table.sample_py(d) for d in _draws53_py(5, 0, 2_000)
        }
        assert ranks == set(range(8))

    def test_low_ranks_are_hotter(self):
        table = _ZipfThresholds(64, 1.0)
        draws = _draws53_py(9, 0, 5_000)
        ranks = [table.sample_py(d) for d in draws]
        assert ranks.count(0) > ranks.count(32) > 0

    def test_uniform_when_exponent_nonpositive(self):
        table = _ZipfThresholds(10, 0.0)
        assert table.uniform
        assert table.sample_py(23) == 3

    def test_single_block_always_rank_zero(self):
        table = _ZipfThresholds(1, 1.0)
        assert table.sample_py(1 << 52) == 0

    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
    def test_numpy_samples_match_pure_python(self):
        import numpy

        draws = _draws53_py(11, 0, 1_000)
        for exponent in (1.0, 0.8, 0.0):
            table = _ZipfThresholds(37, exponent)
            expected = [table.sample_py(d) for d in draws]
            produced = table.sample_np(
                numpy, numpy.asarray(draws, dtype=numpy.int64)
            )
            assert produced.tolist() == expected


class TestReferenceChunks:
    def test_chunks_cover_the_stream_in_order(self):
        model = create_workload("oltp")
        chunks = list(model.reference_chunks(1_000, chunk_size=300))
        assert [len(c) for c in chunks] == [300, 300, 300, 100]
        nodes = [n for c in chunks for n in c.nodes]
        assert nodes == [i % 16 for i in range(1_000)]

    def test_columns_are_python_ints(self):
        chunk = next(create_workload("apache").reference_chunks(64))
        for column in (
            chunk.addresses, chunk.pcs, chunk.writes,
            chunk.instructions,
        ):
            assert len(column) == 64
            assert all(type(value) is int for value in column)
        assert set(chunk.writes) <= {0, 1}

    def test_instruction_gaps_match_scalar_bounds(self):
        model = create_workload("oltp")
        low = max(1, model.instructions_per_reference // 2)
        high = max(
            1,
            model.instructions_per_reference
            + model.instructions_per_reference // 2,
        )
        chunk = next(model.reference_chunks(2_000))
        assert all(low <= g <= high for g in chunk.instructions)

    def test_chunks_from_references_round_trip(self):
        references = [
            MemoryReference(i % 4, 64 * i, 0x100 + i, bool(i % 2), 5)
            for i in range(10)
        ]
        chunks = list(chunks_from_references(references, chunk_size=4))
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert chunks[0].addresses == [0, 64, 128, 192]
        assert chunks[0].writes == [0, 1, 0, 1]

    def test_rejects_bad_chunk_size(self):
        model = create_workload("ocean")
        with pytest.raises(ValueError, match="chunk_size"):
            list(model.reference_chunks(100, chunk_size=0))


class TestProcessChunk:
    def test_empty_chunk_is_a_no_op(self):
        model = create_workload("oltp")
        collector = TraceCollector(model.scaled_config())
        result = collector.run_chunks(iter(()))
        assert len(result.trace) == 0
        assert result.references == 0

    def test_rejects_out_of_range_nodes(self):
        model = create_workload("oltp")
        collector = TraceCollector(model.scaled_config())
        bad = MemoryReference(17, 0x40, 0x100, False, 5)
        with pytest.raises(ValueError, match="nodes outside"):
            collector.run_chunks(chunks_from_references([bad]))

    def test_miss_count_is_returned(self):
        model = create_workload("oltp")
        collector = TraceCollector(model.scaled_config())
        chunk = next(model.reference_chunks(500))
        misses = collector.process_chunk(chunk)
        assert misses == len(collector.result().trace)
        assert collector.result().references == 500
