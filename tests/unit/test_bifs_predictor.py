"""Unit tests for the Broadcast-If-Shared predictor."""

import pytest

from repro.common.params import PredictorConfig
from repro.common.types import AccessType, MEMORY_NODE
from repro.predictors.broadcast_if_shared import BroadcastIfSharedPredictor

N = 16
GETS = AccessType.GETS
GETX = AccessType.GETX


@pytest.fixture
def predictor():
    return BroadcastIfSharedPredictor(
        N, PredictorConfig(n_entries=None, index_granularity=64)
    )


class TestCounterBehaviour:
    def test_cold_is_minimal(self, predictor):
        assert predictor.predict(0x40, 0, GETS).is_empty()

    def test_two_cache_responses_trigger_broadcast(self, predictor):
        predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        assert predictor.predict(0x40, 0, GETS).is_empty()  # counter == 1
        predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        assert predictor.predict(0x40, 0, GETS).is_broadcast()

    def test_memory_responses_train_down(self, predictor):
        for _ in range(3):
            predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        assert predictor.predict(0x40, 0, GETS).is_broadcast()
        for _ in range(2):
            predictor.train_response(0x40, 0, MEMORY_NODE, GETS,
                                     allocate=False)
        assert predictor.predict(0x40, 0, GETS).is_empty()

    def test_counter_saturates(self, predictor):
        for _ in range(10):
            predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        # Two decrements from saturation (3) must drop below threshold.
        predictor.train_response(0x40, 0, MEMORY_NODE, GETS, allocate=False)
        assert predictor.predict(0x40, 0, GETS).is_broadcast()
        predictor.train_response(0x40, 0, MEMORY_NODE, GETS, allocate=False)
        assert predictor.predict(0x40, 0, GETS).is_empty()

    def test_external_requests_train_up(self, predictor):
        predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        predictor.train_external(0x40, 0, requester=3, access=GETS)
        assert predictor.predict(0x40, 0, GETS).is_broadcast()

    def test_upgrade_with_sharers_trains_up(self, predictor):
        """Memory-acked transactions that needed other processors count
        as sharing evidence, not as memory responses."""
        predictor.train_response(0x40, 0, MEMORY_NODE, GETX, allocate=True)
        predictor.train_response(0x40, 0, MEMORY_NODE, GETX, allocate=True)
        assert predictor.predict(0x40, 0, GETX).is_broadcast()

    def test_counter_floor_at_zero(self, predictor):
        predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        for _ in range(5):
            predictor.train_response(0x40, 0, MEMORY_NODE, GETS,
                                     allocate=False)
        predictor.train_response(0x40, 0, 5, GETS, allocate=False)
        predictor.train_response(0x40, 0, 5, GETS, allocate=False)
        # 0 -> 1 -> 2: broadcast again (floor was 0, not negative).
        assert predictor.predict(0x40, 0, GETS).is_broadcast()


class TestStructure:
    def test_entry_bits(self, predictor):
        assert predictor.entry_bits() == 2

    def test_all_or_nothing(self, predictor):
        """BIfS never predicts a proper subset: broadcast or empty."""
        for i in range(40):
            predictor.train_response(i * 64, 0, i % 4, GETS,
                                     allocate=True)
            prediction = predictor.predict(i * 64, 0, GETS)
            assert prediction.is_empty() or prediction.is_broadcast()
