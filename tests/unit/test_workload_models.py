"""Unit tests for the six workload models and the registry."""

import pytest

from repro.common.params import SystemConfig
from repro.workloads import WORKLOAD_NAMES, create_workload, iter_workloads
from repro.workloads.base import WorkloadModel


class TestRegistry:
    def test_six_workloads(self):
        assert len(WORKLOAD_NAMES) == 6
        assert set(WORKLOAD_NAMES) == {
            "apache", "barnes-hut", "ocean", "oltp", "slashcode", "specjbb",
        }

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown workload"):
            create_workload("minesweeper")

    def test_iter_instantiates_all(self):
        models = list(iter_workloads())
        assert [m.name for m in models] == sorted(WORKLOAD_NAMES)


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestEachWorkload:
    def test_metadata_present(self, name):
        model = create_workload(name)
        assert model.name == name
        assert model.description
        assert model.paper.footprint_mb > 0
        assert 0 < model.paper.directory_indirection_pct <= 100

    def test_references_are_deterministic(self, name):
        a = list(create_workload(name, seed=3).references(200))
        b = list(create_workload(name, seed=3).references(200))
        assert a == b

    def test_seeds_differ(self, name):
        a = list(create_workload(name, seed=3).references(200))
        b = list(create_workload(name, seed=4).references(200))
        assert a != b

    def test_round_robin_issue(self, name):
        model = create_workload(name)
        nodes = [r.node for r in model.references(32)]
        assert nodes == [i % 16 for i in range(32)]

    def test_every_node_has_regions(self, name):
        model = create_workload(name)
        members = set()
        for region, weight in model.regions:
            assert weight > 0
            members.update(region.members)
        assert members == set(range(16))

    def test_regions_do_not_overlap(self, name):
        model = create_workload(name)
        ranges = sorted(
            (region.base, region.end) for region, _ in model.regions
        )
        for (_, end_a), (start_b, _) in zip(ranges, ranges[1:]):
            assert end_a <= start_b

    def test_scaled_config_shrinks_caches(self, name):
        model = create_workload(name)
        scaled = model.scaled_config()
        assert scaled.l2_size < model.config.l2_size
        assert scaled.n_processors == model.config.n_processors

    def test_instruction_gaps_positive(self, name):
        model = create_workload(name)
        assert all(r.instructions >= 1 for r in model.references(100))


class TestScaling:
    def test_scaled_blocks_floor_is_one(self):
        model = create_workload("apache", scale=1e-9)
        assert model.scaled_blocks(64) == 1

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            create_workload("apache", scale=0)

    def test_other_processor_counts(self):
        config = SystemConfig(n_processors=8)
        model = create_workload("ocean", config=config)
        nodes = {r.node for r in model.references(64)}
        assert nodes == set(range(8))

    def test_collect_produces_trace(self):
        model = create_workload("barnes-hut")
        result = model.collect(2000)
        assert result.trace.name == "barnes-hut"
        assert result.references == 2000
        assert len(result.trace) > 0
        assert result.total_instructions > 0
