"""Unit tests for the Sticky-Spatial(1) prior-work baseline."""

import pytest

from repro.common.destset import DestinationSet
from repro.common.params import PredictorConfig
from repro.common.types import AccessType
from repro.predictors.sticky_spatial import StickySpatialPredictor

N = 16
GETS = AccessType.GETS


def make(n_entries=64):
    config = PredictorConfig(
        n_entries=n_entries,
        associativity=1,
        index_granularity=64,
    )
    return StickySpatialPredictor(N, config)


def truth(*nodes):
    return DestinationSet.of(N, *nodes)


class TestTraining:
    def test_cold_predicts_empty(self):
        assert make().predict(0x40, 0, GETS).is_empty()

    def test_trains_up_from_truth(self):
        predictor = make()
        predictor.train_truth(0x40, 0, truth(3, 7))
        assert set(predictor.predict(0x40, 0, GETS)) == {3, 7}

    def test_sticky_union_only(self):
        predictor = make()
        predictor.train_truth(0x40, 0, truth(3))
        predictor.train_truth(0x40, 0, truth(7))
        assert set(predictor.predict(0x40, 0, GETS)) == {3, 7}

    def test_response_and_external_training_are_noops(self):
        predictor = make()
        predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        predictor.train_external(0x40, 0, 5, AccessType.GETX)
        assert predictor.predict(0x40, 0, GETS).is_empty()


class TestSpatialAggregation:
    def test_neighbours_contribute(self):
        predictor = make()
        predictor.train_truth(0x40, 0, truth(3))   # block 1
        predictor.train_truth(0xC0, 0, truth(7))   # block 3
        # Block 2 aggregates neighbours 1 and 3.
        assert set(predictor.predict(0x80, 0, GETS)) == {3, 7}

    def test_far_blocks_do_not_contribute(self):
        predictor = make()
        predictor.train_truth(0x40, 0, truth(3))
        assert predictor.predict(0x1400, 0, GETS).is_empty()


class TestAliasing:
    def test_prediction_ignores_tag(self):
        predictor = make(n_entries=64)
        predictor.train_truth(0x40, 0, truth(3))  # block 1
        aliased = 0x40 + 64 * 64  # same index, different tag
        assert 3 in predictor.predict(aliased, 0, GETS)

    def test_replacement_resets_mask(self):
        predictor = make(n_entries=64)
        predictor.train_truth(0x40, 0, truth(3))
        aliased = 0x40 + 64 * 64
        predictor.train_truth(aliased, 0, truth(9))
        # The entry was replaced, not unioned (tags differ).
        assert set(predictor.predict(0x40, 0, GETS)) == {9}
        assert predictor.stats()["replacements"] == 1

    def test_unbounded_has_no_aliasing(self):
        config = PredictorConfig(n_entries=None, index_granularity=64)
        predictor = StickySpatialPredictor(N, config)
        predictor.train_truth(0x40, 0, truth(3))
        far_alias = 0x40 + 64 * 8192
        assert predictor.predict(far_alias, 0, GETS).is_empty()
