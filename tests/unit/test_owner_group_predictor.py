"""Unit tests for the Owner/Group hybrid predictor."""

import pytest

from repro.common.params import PredictorConfig
from repro.common.types import AccessType
from repro.predictors.owner_group import OwnerGroupPredictor

N = 16
GETS = AccessType.GETS
GETX = AccessType.GETX


@pytest.fixture
def predictor():
    return OwnerGroupPredictor(
        N, PredictorConfig(n_entries=None, index_granularity=64)
    )


class TestDispatch:
    def test_gets_uses_owner_policy(self, predictor):
        # Train a group of several nodes.
        predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        predictor.train_external(0x40, 0, 9, GETX)
        predictor.train_external(0x40, 0, 9, GETX)
        # GETS: just the (single) predicted owner — the last writer.
        assert predictor.predict(0x40, 0, GETS).nodes() == (9,)

    def test_getx_uses_group_policy(self, predictor):
        predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        predictor.train_external(0x40, 0, 9, GETX)
        predictor.train_external(0x40, 0, 9, GETX)
        # GETX: the whole trained group.
        assert set(predictor.predict(0x40, 0, GETX)) == {5, 9}

    def test_gets_prediction_never_larger_than_getx(self, predictor):
        for node in (1, 2, 3):
            predictor.train_response(0x40, 0, node, GETS, allocate=True)
            predictor.train_response(0x40, 0, node, GETS, allocate=True)
        gets_prediction = predictor.predict(0x40, 0, GETS)
        getx_prediction = predictor.predict(0x40, 0, GETX)
        assert gets_prediction.count() <= 1
        assert getx_prediction.is_superset_of(gets_prediction) or (
            gets_prediction.count() <= 1
        )

    def test_entry_bits_is_sum_of_parts(self, predictor):
        assert predictor.entry_bits() == (4 + 1) + (2 * N + 5)

    def test_stats_expose_both_tables(self, predictor):
        predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        stats = predictor.stats()
        assert stats["owner"]["entries"] == 1
        assert stats["group"]["entries"] == 1
