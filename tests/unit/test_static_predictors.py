"""Unit tests for the static and oracle predictors plus the registry."""

import pytest

from repro.common.params import PredictorConfig
from repro.common.types import AccessType
from repro.coherence.state import GlobalCoherenceState
from repro.predictors import PREDICTOR_NAMES, create_predictor
from repro.predictors.registry import PAPER_POLICIES
from repro.predictors.static import (
    BroadcastPredictor,
    MinimalPredictor,
    OraclePredictor,
)

from tests.conftest import gets, getx

N = 16
GETS = AccessType.GETS
GETX = AccessType.GETX
CONFIG = PredictorConfig(n_entries=None, index_granularity=64)


class TestStatic:
    def test_minimal_always_empty(self):
        predictor = MinimalPredictor(N, CONFIG)
        predictor.train_response(0x40, 0, 5, GETS, allocate=True)
        assert predictor.predict(0x40, 0, GETS).is_empty()

    def test_broadcast_always_full(self):
        predictor = BroadcastPredictor(N, CONFIG)
        assert predictor.predict(0x40, 0, GETX).is_broadcast()


class TestOracle:
    def test_requires_binding(self):
        predictor = OraclePredictor(N, CONFIG)
        with pytest.raises(RuntimeError):
            predictor.predict(0x40, 0, GETS)

    def test_predicts_exact_required_set(self):
        state = GlobalCoherenceState(N)
        predictor = OraclePredictor(N, CONFIG)
        predictor.bind(state, node=0)
        state.apply(getx(0x40, 5, pc=0))
        state.apply(gets(0x40, 9, pc=0))
        assert predictor.predict(0x40, 0, GETS).nodes() == (5,)
        assert set(predictor.predict(0x40, 0, GETX)) == {5, 9}

    def test_oracle_excludes_self(self):
        state = GlobalCoherenceState(N)
        predictor = OraclePredictor(N, CONFIG)
        predictor.bind(state, node=5)
        state.apply(getx(0x40, 5, pc=0))
        assert predictor.predict(0x40, 0, GETX).is_empty()


class TestRegistry:
    def test_paper_policies_registered(self):
        for name in PAPER_POLICIES:
            assert name in PREDICTOR_NAMES

    @pytest.mark.parametrize("name", PREDICTOR_NAMES)
    def test_create_each(self, name):
        predictor = create_predictor(name, N, CONFIG)
        assert predictor.policy_name == name
        assert predictor.n_nodes == N

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown predictor"):
            create_predictor("nope", N, CONFIG)
