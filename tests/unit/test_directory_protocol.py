"""Unit tests for the directory protocol model."""

import pytest

from repro.common.types import home_node
from repro.protocols.base import LatencyClass
from repro.protocols.directory import DirectoryProtocol

from tests.conftest import gets, getx, make_trace


@pytest.fixture
def protocol(config4):
    return DirectoryProtocol(config4)


class TestDirectory:
    def test_memory_read_is_two_hop(self, protocol):
        outcome = protocol.handle(gets(0x40, 0))
        assert not outcome.indirection
        assert outcome.latency_class is LatencyClass.MEMORY
        assert outcome.forward_messages == 0

    def test_c2c_read_indirects(self, protocol):
        protocol.handle(getx(0x40, 1))
        outcome = protocol.handle(gets(0x40, 2))
        assert outcome.indirection
        assert outcome.latency_class is LatencyClass.INDIRECT
        assert outcome.forward_messages == 1

    def test_write_forwards_invalidations(self, protocol):
        protocol.handle(getx(0x40, 1))
        protocol.handle(gets(0x40, 2))
        protocol.handle(gets(0x40, 3))
        outcome = protocol.handle(getx(0x40, 0))
        # Owner (1) plus sharers (2, 3) each get one forward.
        assert outcome.forward_messages == 3
        assert outcome.indirection

    def test_request_message_free_when_requester_is_home(self, config4):
        protocol = DirectoryProtocol(config4)
        address = 0x40
        home = home_node(address, config4.n_processors, config4.block_size)
        outcome = protocol.handle(gets(address, home))
        assert outcome.request_messages == 0
        other = (home + 1) % config4.n_processors
        outcome = protocol.handle(gets(address + 0x1000, other))
        assert outcome.request_messages in (0, 1)

    def test_request_bandwidth_far_below_snooping(self, protocol, config4):
        trace = make_trace(
            [gets(0x40 * i, i % 4) for i in range(1, 40)]
        )
        totals = protocol.run(trace)
        assert totals.request_messages_per_miss < 2.0

    def test_invalidation_only_write_counts_as_indirection(self, protocol):
        protocol.handle(gets(0x40, 1))
        protocol.handle(gets(0x40, 2))
        outcome = protocol.handle(getx(0x40, 3))
        # Data from memory, but sharers 1, 2 must be invalidated.
        assert outcome.indirection
        assert outcome.latency_class is LatencyClass.MEMORY
        assert outcome.forward_messages == 2
