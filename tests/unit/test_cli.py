"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tradeoff_defaults(self):
        args = build_parser().parse_args(["tradeoff", "oltp"])
        assert args.workload == "oltp"
        assert args.entries == 8192
        assert args.granularity == 1024
        assert not args.pc_index
        assert "owner" in args.predictors

    def test_runtime_model_choices(self):
        args = build_parser().parse_args(
            ["runtime", "oltp", "--model", "detailed"]
        )
        assert args.model == "detailed"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["runtime", "oltp", "--model", "bad"])


class TestCommands:
    def test_workloads_lists_all_six(self, capsys):
        assert main(["workloads"]) == 0
        output = capsys.readouterr().out
        for name in ("apache", "barnes-hut", "ocean", "oltp",
                     "slashcode", "specjbb"):
            assert name in output

    def test_unknown_workload_errors(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["tradeoff", "nope", "--refs", "1000"])

    def test_collect_then_tradeoff_roundtrip(self, tmp_path, capsys):
        trace_file = str(tmp_path / "mini.trace")
        assert main(
            ["collect", "barnes-hut", "--refs", "4000", "--out", trace_file]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(
            ["tradeoff", trace_file, "--predictors", "owner",
             "--entries", "0"]
        ) == 0
        output = capsys.readouterr().out
        assert "broadcast-snooping" in output
        assert "owner" in output

    def test_tradeoff_with_plot(self, capsys):
        assert main(
            ["tradeoff", "barnes-hut", "--refs", "4000",
             "--predictors", "group", "--plot"]
        ) == 0
        output = capsys.readouterr().out
        assert "request messages per miss" in output
        assert "X=directory" in output

    def test_analyze_workload(self, capsys):
        assert main(["analyze", "barnes-hut", "--refs", "4000"]) == 0
        output = capsys.readouterr().out
        assert "Table 2" in output
        assert "Figure 4" in output

    def test_accuracy_command(self, capsys):
        assert main(
            ["accuracy", "barnes-hut", "--refs", "4000",
             "--predictors", "owner", "group"]
        ) == 0
        output = capsys.readouterr().out
        assert "coverage" in output
        assert "group" in output

    def test_runtime_command(self, capsys):
        assert main(
            ["runtime", "barnes-hut", "--refs", "4000",
             "--predictors", "owner"]
        ) == 0
        output = capsys.readouterr().out
        assert "norm-runtime" in output
