"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tradeoff_defaults(self):
        args = build_parser().parse_args(["tradeoff", "oltp"])
        assert args.workload == "oltp"
        assert args.entries == 8192
        assert args.granularity == 1024
        assert not args.pc_index
        assert "owner" in args.predictors

    def test_runtime_model_choices(self):
        args = build_parser().parse_args(
            ["runtime", "oltp", "--model", "detailed"]
        )
        assert args.model == "detailed"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["runtime", "oltp", "--model", "bad"])


class TestCommands:
    def test_workloads_lists_all_six(self, capsys):
        assert main(["workloads"]) == 0
        output = capsys.readouterr().out
        for name in ("apache", "barnes-hut", "ocean", "oltp",
                     "slashcode", "specjbb"):
            assert name in output

    def test_unknown_workload_errors(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["tradeoff", "nope", "--refs", "1000"])

    def test_collect_then_tradeoff_roundtrip(self, tmp_path, capsys):
        trace_file = str(tmp_path / "mini.trace")
        assert main(
            ["collect", "barnes-hut", "--refs", "4000", "--out", trace_file]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(
            ["tradeoff", trace_file, "--predictors", "owner",
             "--entries", "0"]
        ) == 0
        output = capsys.readouterr().out
        assert "broadcast-snooping" in output
        assert "owner" in output

    def test_tradeoff_with_plot(self, capsys):
        assert main(
            ["tradeoff", "barnes-hut", "--refs", "4000",
             "--predictors", "group", "--plot"]
        ) == 0
        output = capsys.readouterr().out
        assert "request messages per miss" in output
        assert "X=directory" in output

    def test_analyze_workload(self, capsys):
        assert main(["analyze", "barnes-hut", "--refs", "4000"]) == 0
        output = capsys.readouterr().out
        assert "Table 2" in output
        assert "Figure 4" in output

    def test_accuracy_command(self, capsys):
        assert main(
            ["accuracy", "barnes-hut", "--refs", "4000",
             "--predictors", "owner", "group"]
        ) == 0
        output = capsys.readouterr().out
        assert "coverage" in output
        assert "group" in output

    def test_runtime_command(self, capsys):
        assert main(
            ["runtime", "barnes-hut", "--refs", "4000",
             "--predictors", "owner"]
        ) == 0
        output = capsys.readouterr().out
        assert "norm-runtime" in output

    def test_collect_unknown_workload_friendly_error(self, tmp_path):
        out = str(tmp_path / "x.trace")
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["collect", "nope", "--refs", "1000", "--out", out])

    def test_collect_hits_trace_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = ["collect", "barnes-hut", "--refs", "2000",
                "--cache-dir", cache]
        assert main([*args, "--out", str(tmp_path / "a.trace")]) == 0
        first = capsys.readouterr().out
        assert main([*args, "--out", str(tmp_path / "b.trace")]) == 0
        second = capsys.readouterr().out
        # The second collection replays the cached trace.
        assert first.split("to ")[0] == second.split("to ")[0]
        assert (tmp_path / "a.trace").read_text() == (
            tmp_path / "b.trace"
        ).read_text()


class TestSweep:
    def _write_spec(self, tmp_path, **overrides):
        spec = {
            "name": "mini",
            "kind": "tradeoff",
            "workloads": ["barnes-hut", "ocean"],
            "n_references": 2000,
            "policies": ["owner"],
        }
        spec.update(overrides)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_sweep_runs_and_reports_cache(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path)
        cache = str(tmp_path / "cache")
        out = tmp_path / "results.json"
        assert main(
            ["sweep", spec, "--jobs", "2", "--cache-dir", cache,
             "--out", str(out)]
        ) == 0
        output = capsys.readouterr().out
        assert "sweep mini" in output
        assert "trace cache: 0 hit(s), 2 miss(es)" in output
        assert out.exists()

        # Second invocation reuses the on-disk traces.
        assert main(
            ["sweep", spec, "--jobs", "2", "--cache-dir", cache]
        ) == 0
        assert "trace cache: 2 hit(s), 0 miss(es)" in (
            capsys.readouterr().out
        )

    def test_sweep_jobs_default_is_adaptive(self, tmp_path, capsys,
                                            monkeypatch):
        import repro.cli as cli_module

        monkeypatch.setattr(cli_module, "default_jobs", lambda: 1)
        spec = self._write_spec(tmp_path, workloads=["barnes-hut"])
        assert main(["sweep", spec, "--no-cache"]) == 0
        # No --jobs flag: the banner reports the resolved worker count.
        assert "jobs=1 " in capsys.readouterr().out

    def test_sweep_csv_and_json_outputs(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path, workloads=["ocean"])
        out = tmp_path / "r.json"
        csv_out = tmp_path / "r.csv"
        assert main(
            ["sweep", spec, "--no-cache", "--out", str(out),
             "--csv", str(csv_out)]
        ) == 0
        from repro.experiment import ResultSet

        results = ResultSet.from_json(out)
        assert len(results) == 3  # baselines + owner
        assert csv_out.read_text().startswith("workload,seed,label,")

    def test_sweep_rejects_bad_spec(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read spec"):
            main(["sweep", str(tmp_path / "missing.json")])
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(SystemExit, match="invalid JSON"):
            main(["sweep", str(bad)])
        with pytest.raises(SystemExit, match="invalid spec"):
            main(["sweep", self._write_spec(tmp_path, kind="nope")])

    def test_sweep_bandwidth_axis_produces_curves(self, tmp_path, capsys):
        """Acceptance: a >=4-point bandwidth sweep exports per-protocol
        runtime/traffic curves through the ResultSet JSON."""
        spec = self._write_spec(
            tmp_path, kind="runtime", workloads=["barnes-hut"],
            policies=["owner-group"],
        )
        out = tmp_path / "bw.json"
        assert main(
            ["sweep", spec, "--no-cache", "--jobs", "1",
             "--axis", "bandwidth=10,2.5,1,0.25", "--out", str(out)]
        ) == 0
        output = capsys.readouterr().out
        assert "bandwidths=4" in output
        assert "bandwidth/runtime curves — barnes-hut" in output
        assert "link bandwidth (GB/s)" in output

        from repro.experiment import ResultSet

        results = ResultSet.from_json(out)
        labels = {"directory", "broadcast-snooping", "owner-group"}
        for metric in ("runtime_ns", "traffic_bytes_per_miss"):
            curves = results.bandwidth_curves(metric)
            assert set(curves) == labels
            for points in curves.values():
                assert [b for b, _ in points] == [0.25, 1.0, 2.5, 10.0]
        # Shrinking links never speed broadcast snooping up.
        snooping = dict(
            results.bandwidth_curves("runtime_ns")["broadcast-snooping"]
        )
        assert snooping[0.25] >= snooping[10.0]

    def test_sweep_rejects_bad_axis(self, tmp_path):
        spec = self._write_spec(
            tmp_path, kind="runtime", workloads=["barnes-hut"],
            policies=["owner"],
        )
        with pytest.raises(SystemExit, match="unknown axis"):
            main(["sweep", spec, "--no-cache", "--axis", "volts=1,2"])
        with pytest.raises(SystemExit, match="NAME=V1,V2"):
            main(["sweep", spec, "--no-cache", "--axis", "bandwidth"])
        with pytest.raises(SystemExit, match="numbers"):
            main(["sweep", spec, "--no-cache", "--axis", "bandwidth=a,b"])
        # Spec-level validation surfaces through the flag too
        # (tradeoff spec + timing axis).
        tradeoff = self._write_spec(tmp_path, policies=["owner"])
        with pytest.raises(SystemExit, match="runtime"):
            main(
                ["sweep", tradeoff, "--no-cache",
                 "--axis", "bandwidth=10,1"]
            )

    def test_runtime_interconnect_flag(self, capsys):
        assert main(
            ["runtime", "barnes-hut", "--refs", "3000",
             "--predictors", "owner", "--interconnect", "ideal"]
        ) == 0
        assert "norm-runtime" in capsys.readouterr().out
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["runtime", "oltp", "--interconnect", "warp"]
            )


class TestFabricCLI:
    def _write_spec(self, tmp_path):
        spec = {
            "name": "mini",
            "kind": "tradeoff",
            "workloads": ["barnes-hut"],
            "n_references": 1500,
            "policies": ["owner"],
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_parser_accepts_fabric_commands(self):
        parser = build_parser()
        args = parser.parse_args(
            ["sweep", "s.json", "--fabric", "fab", "--workers", "2"]
        )
        assert args.fabric == "fab" and args.workers == 2
        args = parser.parse_args(
            ["work", "fab", "--workers", "3", "--max-cells", "1",
             "--lease-ttl", "5", "--follow"]
        )
        assert args.workers == 3 and args.follow
        args = parser.parse_args(["serve", "fab", "--port", "0"])
        assert args.port == 0
        args = parser.parse_args(["fabric", "status", "fab", "--json"])
        assert args.fabric_command == "status" and args.json

    def test_workers_without_fabric_rejected(self, tmp_path):
        spec = self._write_spec(tmp_path)
        with pytest.raises(SystemExit, match="--workers requires"):
            main(["sweep", spec, "--workers", "2"])

    def test_enqueue_work_status_sweep_flow(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path)
        fabric = str(tmp_path / "fab")

        assert main(["fabric", "enqueue", spec, fabric]) == 0
        out = capsys.readouterr().out
        assert "3 enqueued" in out

        assert main(
            ["work", fabric, "--max-cells", "1", "--workers", "1"]
        ) == 0
        capsys.readouterr()

        assert main(["fabric", "status", fabric]) == 0
        out = capsys.readouterr().out
        assert "2 pending" in out
        assert "1 done" in out

        # The coordinator resumes the remaining cells and the sweep
        # completes with a normal results table.
        out_path = tmp_path / "results.json"
        assert main(
            ["sweep", spec, "--fabric", fabric, "--workers", "1",
             "--out", str(out_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "1 cell(s) already in store" in out
        assert "owner" in out
        assert out_path.exists()

    def test_fabric_status_json(self, tmp_path, capsys):
        fabric = str(tmp_path / "fab")
        assert main(["fabric", "status", fabric, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["pending"] == 0
        assert status["specs"] == []
