"""Unit tests for destination-set sufficiency (Section 4.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.destset import DestinationSet
from repro.common.types import AccessType, MEMORY_NODE, home_node
from repro.coherence.state import BlockState
from repro.coherence.sufficiency import is_sufficient, minimal_set, required_set

N = 16
ADDRESS = 0x1000
HOME = home_node(ADDRESS, N, 64)


class TestMinimalSet:
    def test_contains_requester_and_home(self):
        minimal = minimal_set(3, ADDRESS, N)
        assert minimal.contains(3)
        assert minimal.contains(HOME)

    def test_size_is_one_when_requester_is_home(self):
        minimal = minimal_set(HOME, ADDRESS, N)
        assert minimal.count() == 1


class TestRequiredSet:
    def test_memory_owner_read_needs_nobody(self):
        block = BlockState()
        assert required_set(block, 0, AccessType.GETS, N).is_empty()

    def test_processor_owner_read_needs_owner(self):
        block = BlockState(owner=5)
        assert required_set(block, 0, AccessType.GETS, N).nodes() == (5,)

    def test_own_block_read_needs_nobody(self):
        block = BlockState(owner=5)
        assert required_set(block, 5, AccessType.GETS, N).is_empty()

    def test_write_needs_owner_and_sharers(self):
        block = BlockState(owner=5, sharers=frozenset({2, 9}))
        needed = required_set(block, 0, AccessType.GETX, N)
        assert set(needed) == {2, 5, 9}

    def test_read_ignores_sharers(self):
        block = BlockState(owner=5, sharers=frozenset({2, 9}))
        assert required_set(block, 0, AccessType.GETS, N).nodes() == (5,)

    def test_write_excludes_requester_from_sharers(self):
        block = BlockState(owner=MEMORY_NODE, sharers=frozenset({0, 2}))
        assert required_set(block, 0, AccessType.GETX, N).nodes() == (2,)


class TestIsSufficient:
    def test_must_include_requester(self):
        destination = DestinationSet.of(N, HOME)
        assert not is_sufficient(
            destination, BlockState(), 3, AccessType.GETS, ADDRESS
        )

    def test_must_include_home(self):
        destination = DestinationSet.of(N, 3)
        assert not is_sufficient(
            destination, BlockState(), 3, AccessType.GETS, ADDRESS
        )

    def test_minimal_sufficient_for_memory_owned_read(self):
        minimal = minimal_set(3, ADDRESS, N)
        assert is_sufficient(
            minimal, BlockState(), 3, AccessType.GETS, ADDRESS
        )

    def test_minimal_insufficient_when_cache_owned(self):
        minimal = minimal_set(3, ADDRESS, N)
        block = BlockState(owner=9)
        assert not is_sufficient(
            minimal, block, 3, AccessType.GETS, ADDRESS
        )

    def test_adding_owner_makes_read_sufficient(self):
        destination = minimal_set(3, ADDRESS, N).add(9)
        block = BlockState(owner=9)
        assert is_sufficient(destination, block, 3, AccessType.GETS, ADDRESS)

    def test_write_needs_every_sharer(self):
        block = BlockState(owner=9, sharers=frozenset({1, 2}))
        partial = minimal_set(3, ADDRESS, N).add(9).add(1)
        assert not is_sufficient(partial, block, 3, AccessType.GETX, ADDRESS)
        full = partial.add(2)
        assert is_sufficient(full, block, 3, AccessType.GETX, ADDRESS)

    def test_broadcast_always_sufficient(self):
        block = BlockState(owner=9, sharers=frozenset({1, 2, 7}))
        assert is_sufficient(
            DestinationSet.broadcast(N), block, 3, AccessType.GETX, ADDRESS
        )

    @settings(max_examples=80)
    @given(
        owner=st.one_of(st.just(MEMORY_NODE), st.integers(0, N - 1)),
        sharer_bits=st.integers(0, (1 << N) - 1),
        requester=st.integers(0, N - 1),
        access=st.sampled_from([AccessType.GETS, AccessType.GETX]),
    )
    def test_minimal_plus_required_is_always_sufficient(
        self, owner, sharer_bits, requester, access
    ):
        sharers = frozenset(
            node
            for node in range(N)
            if sharer_bits >> node & 1 and node != owner
        )
        block = BlockState(owner=owner, sharers=sharers)
        destination = minimal_set(requester, ADDRESS, N) | required_set(
            block, requester, access, N
        )
        assert is_sufficient(
            destination, block, requester, access, ADDRESS
        )
