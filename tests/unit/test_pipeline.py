"""Unit tests for the trace-collection pipeline."""

import pytest

from repro.cache.pipeline import TraceCollector
from repro.cache.reference import MemoryReference
from repro.common.params import SystemConfig
from repro.common.types import AccessType, MEMORY_NODE

KB = 1024


def small_config():
    return SystemConfig(
        n_processors=4, l1d_size=1 * KB, l1i_size=1 * KB, l2_size=4 * KB
    )


def read(node, address, instructions=10, pc=0x100):
    return MemoryReference(node, address, pc, is_write=False,
                           instructions=instructions)


def write(node, address, instructions=10, pc=0x200):
    return MemoryReference(node, address, pc, is_write=True,
                           instructions=instructions)


class TestMemoryReference:
    def test_rejects_negative_fields(self):
        with pytest.raises(ValueError):
            MemoryReference(-1, 0, 0, False)
        with pytest.raises(ValueError):
            MemoryReference(0, -1, 0, False)
        with pytest.raises(ValueError):
            MemoryReference(0, 0, 0, False, instructions=-1)


class TestCollector:
    def test_cold_miss_then_hit(self):
        collector = TraceCollector(small_config())
        assert collector.process(read(0, 0x40))
        assert not collector.process(read(0, 0x40))
        assert len(collector.result().trace) == 1

    def test_read_then_write_upgrades(self):
        collector = TraceCollector(small_config())
        collector.process(read(0, 0x40))
        assert collector.process(write(0, 0x40))  # upgrade GETX
        trace = collector.result().trace
        assert [r.access for r in trace] == [AccessType.GETS, AccessType.GETX]

    def test_write_hit_when_exclusive(self):
        collector = TraceCollector(small_config())
        collector.process(write(0, 0x40))
        assert not collector.process(write(0, 0x40))

    def test_owner_write_with_sharers_is_upgrade_miss(self):
        collector = TraceCollector(small_config())
        collector.process(write(0, 0x40))
        collector.process(read(1, 0x40))
        # Node 0 still owns, but node 1 shares: must issue GETX.
        assert collector.process(write(0, 0x40))

    def test_external_write_invalidates_reader(self):
        collector = TraceCollector(small_config())
        collector.process(read(0, 0x40))
        collector.process(write(1, 0x40))
        assert collector.process(read(0, 0x40))  # invalidated, misses

    def test_instruction_accounting(self):
        collector = TraceCollector(small_config())
        collector.process(read(0, 0x40, instructions=25))
        collector.process(read(1, 0x80, instructions=5))
        result = collector.result()
        assert result.instructions[0] == 25
        assert result.instructions[1] == 5
        assert result.total_instructions == 30
        assert result.references == 2

    def test_instruction_gaps_recorded_per_miss(self):
        collector = TraceCollector(small_config())
        collector.process(read(0, 0x40, instructions=10))
        collector.process(read(0, 0x40, instructions=7))   # hit
        collector.process(read(0, 0x80, instructions=3))   # miss
        trace = collector.result().trace
        assert trace[0].instructions == 10
        assert trace[1].instructions == 10  # 7 + 3 since last miss

    def test_misses_per_kilo_instruction(self):
        collector = TraceCollector(small_config())
        collector.process(read(0, 0x40, instructions=1000))
        result = collector.result()
        assert result.misses_per_kilo_instruction == pytest.approx(1.0)

    def test_capacity_eviction_returns_ownership_to_memory(self):
        config = small_config()
        collector = TraceCollector(config)
        # Stream writes far beyond the 4 KB L2 from one node.
        n_blocks = (config.l2_size // config.block_size) * 3
        for i in range(n_blocks):
            collector.process(write(0, i * 64))
        state = collector.global_state.lookup(0x0)
        assert state.owner == MEMORY_NODE  # written back on eviction

    def test_rejects_out_of_range_node(self):
        collector = TraceCollector(small_config())
        with pytest.raises(ValueError):
            collector.process(read(9, 0x40))

    def test_run_returns_result(self):
        collector = TraceCollector(small_config(), name="demo")
        result = collector.run([read(0, 0x40), write(1, 0x40)])
        assert result.trace.name == "demo"
        assert len(result.trace) == 2
