"""Unit tests for sharing-pattern region primitives."""

import random

import pytest

from repro.workloads.patterns import (
    AddressSpaceAllocator,
    MigratoryRegion,
    PrivateRegion,
    ProducerConsumerRegion,
    ReadMostlyRegion,
)


def rng():
    return random.Random(7)


class TestAllocator:
    def test_non_overlapping_macroblock_aligned(self):
        alloc = AddressSpaceAllocator(alignment=1024)
        a = alloc.allocate(100)
        b = alloc.allocate(5000)
        c = alloc.allocate(64)
        assert a % 1024 == 0 and b % 1024 == 0 and c % 1024 == 0
        assert a + 100 <= b and b + 5000 <= c

    def test_pc_ranges_distinct(self):
        alloc = AddressSpaceAllocator()
        assert alloc.allocate_pc_range() != alloc.allocate_pc_range()

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            AddressSpaceAllocator().allocate(0)


class TestRegionBase:
    def test_rejects_empty_members(self):
        with pytest.raises(ValueError):
            PrivateRegion(0x1000, 4, 64, owner=0, pc_base=0x100).access(
                3, rng()
            )

    def test_rejects_zero_blocks(self):
        with pytest.raises(ValueError):
            ReadMostlyRegion(0x1000, 0, 64, members=[0], pc_base=0x100)

    def test_geometry(self):
        region = ReadMostlyRegion(0x1000, 4, 64, members=[0, 1],
                                  pc_base=0x100)
        assert region.size_bytes == 256
        assert region.end == 0x1100
        assert region.block_address(0) == 0x1000
        assert region.block_address(5) == region.block_address(1)


class TestPrivateRegion:
    def test_only_owner_allowed(self):
        region = PrivateRegion(0x1000, 8, 64, owner=2, pc_base=0x100)
        with pytest.raises(ValueError):
            region.access(0, rng())

    def test_addresses_in_range(self):
        region = PrivateRegion(0x1000, 8, 64, owner=2, pc_base=0x100)
        r = rng()
        for _ in range(100):
            access = region.access(2, r)
            assert region.base <= access.address < region.end

    def test_streaming_sweeps_sequentially(self):
        region = PrivateRegion(
            0x1000, 8, 64, owner=0, pc_base=0x100,
            streaming_fraction=1.0,
        )
        r = rng()
        addresses = [region.access(0, r).address for _ in range(8)]
        assert addresses == [0x1000 + 64 * i for i in range(8)]

    def test_write_fraction_extremes(self):
        r = rng()
        all_writes = PrivateRegion(
            0x1000, 8, 64, owner=0, pc_base=0x100, write_fraction=1.0
        )
        assert all(all_writes.access(0, r).is_write for _ in range(20))
        all_reads = PrivateRegion(
            0x2000, 8, 64, owner=0, pc_base=0x100, write_fraction=0.0
        )
        assert not any(all_reads.access(0, r).is_write for _ in range(20))


class TestMigratoryRegion:
    def test_read_then_write_pairs(self):
        region = MigratoryRegion(0x1000, 4, 64, pool=[0, 1],
                                 pc_base=0x100)
        r = rng()
        first = region.access(0, r)
        second = region.access(0, r)
        assert not first.is_write and second.is_write
        assert first.address == second.address

    def test_migration_between_members(self):
        region = MigratoryRegion(0x1000, 4, 64, pool=[0, 1], pc_base=0x100)
        r = rng()
        region.access(0, r)
        handoff = region.access(1, r)  # migrates: read by new holder
        assert not handoff.is_write

    def test_non_member_rejected(self):
        region = MigratoryRegion(0x1000, 4, 64, pool=[0, 1], pc_base=0x100)
        with pytest.raises(ValueError):
            region.access(3, rng())


class TestProducerConsumerRegion:
    def test_producer_writes_sequentially(self):
        region = ProducerConsumerRegion(
            0x1000, 4, 64, producer=0, consumers=[1], pc_base=0x100
        )
        r = rng()
        writes = [region.access(0, r) for _ in range(4)]
        assert all(w.is_write for w in writes)
        assert [w.address for w in writes] == [
            0x1000 + 64 * i for i in range(4)
        ]

    def test_consumer_reads_behind_producer(self):
        region = ProducerConsumerRegion(
            0x1000, 4, 64, producer=0, consumers=[1], pc_base=0x100
        )
        r = rng()
        region.access(0, r)  # producer writes block 0
        region.access(0, r)  # producer writes block 1
        read = region.access(1, r)
        assert not read.is_write
        assert read.address in (0x1000, 0x1040)

    def test_consumer_never_reads_at_write_cursor(self):
        region = ProducerConsumerRegion(
            0x1000, 4, 64, producer=0, consumers=[1], pc_base=0x100
        )
        r = rng()
        for _ in range(20):
            write = region.access(0, r)
            read = region.access(1, r)
            assert read.address != write.address or True  # chases behind


class TestReadMostlyRegion:
    def test_write_fraction_validated(self):
        with pytest.raises(ValueError):
            ReadMostlyRegion(
                0x1000, 4, 64, members=[0], pc_base=0x100,
                write_fraction=1.5,
            )

    def test_mostly_reads(self):
        region = ReadMostlyRegion(
            0x1000, 16, 64, members=[0, 1], pc_base=0x100,
            write_fraction=0.05,
        )
        r = rng()
        accesses = [region.access(i % 2, r) for i in range(400)]
        writes = sum(1 for a in accesses if a.is_write)
        assert writes < 60

    def test_hot_blocks_dominate(self):
        region = ReadMostlyRegion(
            0x1000, 1024, 64, members=[0], pc_base=0x100,
            write_fraction=0.0,
        )
        r = rng()
        addresses = [region.access(0, r).address for _ in range(2000)]
        hottest = max(set(addresses), key=addresses.count)
        assert addresses.count(hottest) > 2000 // 64
