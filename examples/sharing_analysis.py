#!/usr/bin/env python
"""Section 2 workload characterisation (Table 2, Figures 2-4).

Collects traces for all six workload models and reproduces the paper's
sharing-behaviour analysis: workload properties, the instantaneous
sharing histogram, degree of sharing over the run, and the locality of
cache-to-cache misses.

Run:  python examples/sharing_analysis.py [workload ...]
"""

import sys

from repro import WORKLOAD_NAMES, create_workload, default_corpus
from repro.analysis import (
    degree_of_sharing,
    locality_cdf,
    sharing_histogram,
    workload_properties,
)
from repro.evaluation.report import (
    render_degree_of_sharing,
    render_locality,
    render_sharing_histogram,
    render_workload_properties,
)

N_REFERENCES = 60_000


def main() -> None:
    names = sys.argv[1:] or list(WORKLOAD_NAMES)
    corpus = default_corpus()

    properties, histograms, degrees, cdfs = [], [], [], []
    for name in names:
        print(f"Collecting {name} ...")
        result = corpus.collect(name, N_REFERENCES)
        properties.append(workload_properties(result))
        histograms.append(sharing_histogram(result.trace))
        degrees.append(degree_of_sharing(result.trace))
        for kind in ("block", "macroblock", "pc"):
            cdfs.append(locality_cdf(result.trace, kind=kind))

    print("\n== Table 2: workload properties (scaled 1/16) ==")
    print(render_workload_properties(properties))

    paper = {n: create_workload(n).paper for n in names}
    print("\n   paper reference (full scale):")
    for name in names:
        row = paper[name]
        print(
            f"   {name:11s} {row.footprint_mb:4.0f} MB  "
            f"{row.misses_per_kilo_instr:4.1f} miss/1k-instr  "
            f"{row.directory_indirection_pct:3.0f}% indirections"
        )

    print("\n== Figure 2: processors that must observe each miss ==")
    print(render_sharing_histogram(histograms))

    print("\n== Figure 3: degree of sharing (cumulative) ==")
    print(render_degree_of_sharing(degrees))

    print("\n== Figure 4: locality of cache-to-cache misses ==")
    print(render_locality(cdfs, ks=(10, 100, 1000)))


if __name__ == "__main__":
    main()
