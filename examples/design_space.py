#!/usr/bin/env python
"""Predictor and system design-space exploration.

Sweeps the paper's three predictor design axes (Figure 6) on the OLTP
workload:

  (a) PC indexing versus data-block indexing,
  (b) macroblock size (64 B / 256 B / 1024 B), and
  (c) predictor capacity (unbounded / 32k / 8k entries), including the
      StickySpatial(1) prior-work baseline,

then goes where the paper only points: link bandwidth as a swept axis.
Section 5.3 notes the winning protocol "depends upon ... the available
interconnect bandwidth"; the final sweep shrinks the links from the
paper's ample 10 GB/s down to 0.25 GB/s and plots each protocol's
runtime *curve*, exposing the snooping/multicast/directory crossover
as a measured frontier instead of a single operating point.

Run:  python examples/design_space.py
"""

import dataclasses

from repro import PredictorConfig, default_corpus
from repro.evaluation.plot import plot_bandwidth_curves
from repro.evaluation.report import render_tradeoff
from repro.evaluation.tradeoff import evaluate_design_space
from repro.experiment import DEFAULT_BANDWIDTHS, Runner, bandwidth_sweep

N_REFERENCES = 60_000
POLICIES = ("owner", "broadcast-if-shared", "group", "owner-group")


def sweep(trace, title, configs):
    print(f"\n== {title} ==")
    points = []
    for label, config in configs:
        for point in evaluate_design_space(
            trace,
            predictors=POLICIES,
            predictor_config=config,
            include_baselines=not points,  # baselines once
        ):
            points.append(
                dataclasses.replace(
                    point, label=f"{point.label} [{label}]"
                )
            )
    print(render_tradeoff(points))


def main() -> None:
    trace = default_corpus().trace("oltp", N_REFERENCES)
    print(f"OLTP trace: {len(trace)} misses")

    sweep(
        trace,
        "Figure 6(a): indexing (unbounded tables)",
        [
            ("block-64B", PredictorConfig(n_entries=None,
                                          index_granularity=64)),
            ("pc", PredictorConfig(n_entries=None, use_pc_index=True)),
        ],
    )
    sweep(
        trace,
        "Figure 6(b): macroblock size (unbounded tables)",
        [
            ("64B", PredictorConfig(n_entries=None, index_granularity=64)),
            ("256B", PredictorConfig(n_entries=None, index_granularity=256)),
            ("1024B", PredictorConfig(n_entries=None,
                                      index_granularity=1024)),
        ],
    )
    sweep(
        trace,
        "Figure 6(c): capacity (1024B macroblocks)",
        [
            ("unbounded", PredictorConfig(n_entries=None)),
            ("32k", PredictorConfig(n_entries=32768)),
            ("8k", PredictorConfig(n_entries=8192)),
        ],
    )
    print(
        "\nStickySpatial(1) baseline at 8k entries, for comparison:"
    )
    points = evaluate_design_space(
        trace,
        predictors=("sticky-spatial",),
        predictor_config=PredictorConfig(n_entries=8192, associativity=1),
        include_baselines=False,
    )
    print(render_tradeoff(points))

    print("\n== Beyond the paper: link bandwidth as a swept axis ==")
    spec = bandwidth_sweep(
        ("oltp",),
        DEFAULT_BANDWIDTHS,
        n_references=N_REFERENCES,
        policies=("owner-group",),
    )
    results = Runner(jobs=1).run(spec)
    print(results.table())
    print("\nper-protocol runtime vs link bandwidth (lower is better):")
    print(plot_bandwidth_curves(results.bandwidth_curves("runtime_ns")))


if __name__ == "__main__":
    main()
