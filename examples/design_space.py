#!/usr/bin/env python
"""Predictor design-space exploration (the paper's Figure 6).

Sweeps the three predictor design axes on the OLTP workload:

  (a) PC indexing versus data-block indexing,
  (b) macroblock size (64 B / 256 B / 1024 B), and
  (c) predictor capacity (unbounded / 32k / 8k entries), including the
      StickySpatial(1) prior-work baseline.

Run:  python examples/design_space.py
"""

import dataclasses

from repro import PredictorConfig, default_corpus
from repro.evaluation.report import render_tradeoff
from repro.evaluation.tradeoff import evaluate_design_space

N_REFERENCES = 60_000
POLICIES = ("owner", "broadcast-if-shared", "group", "owner-group")


def sweep(trace, title, configs):
    print(f"\n== {title} ==")
    points = []
    for label, config in configs:
        for point in evaluate_design_space(
            trace,
            predictors=POLICIES,
            predictor_config=config,
            include_baselines=not points,  # baselines once
        ):
            points.append(
                dataclasses.replace(
                    point, label=f"{point.label} [{label}]"
                )
            )
    print(render_tradeoff(points))


def main() -> None:
    trace = default_corpus().trace("oltp", N_REFERENCES)
    print(f"OLTP trace: {len(trace)} misses")

    sweep(
        trace,
        "Figure 6(a): indexing (unbounded tables)",
        [
            ("block-64B", PredictorConfig(n_entries=None,
                                          index_granularity=64)),
            ("pc", PredictorConfig(n_entries=None, use_pc_index=True)),
        ],
    )
    sweep(
        trace,
        "Figure 6(b): macroblock size (unbounded tables)",
        [
            ("64B", PredictorConfig(n_entries=None, index_granularity=64)),
            ("256B", PredictorConfig(n_entries=None, index_granularity=256)),
            ("1024B", PredictorConfig(n_entries=None,
                                      index_granularity=1024)),
        ],
    )
    sweep(
        trace,
        "Figure 6(c): capacity (1024B macroblocks)",
        [
            ("unbounded", PredictorConfig(n_entries=None)),
            ("32k", PredictorConfig(n_entries=32768)),
            ("8k", PredictorConfig(n_entries=8192)),
        ],
    )
    print(
        "\nStickySpatial(1) baseline at 8k entries, for comparison:"
    )
    points = evaluate_design_space(
        trace,
        predictors=("sticky-spatial",),
        predictor_config=PredictorConfig(n_entries=8192, associativity=1),
        include_baselines=False,
    )
    print(render_tradeoff(points))


if __name__ == "__main__":
    main()
