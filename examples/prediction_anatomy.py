#!/usr/bin/env python
"""Why each predictor lands where it does: coverage vs precision.

The paper's Figure 5 shows *where* each policy sits on the
latency/bandwidth plane; this example shows *why*, by scoring every
prediction against the true required destination set:

- coverage (recall): required processors the prediction included —
  misses here are retries (indirections);
- precision: predicted extra processors that were actually required —
  misses here are wasted request messages.

Run:  python examples/prediction_anatomy.py [workload]
"""

import sys

from repro import default_corpus
from repro.analysis.accuracy import PredictionOutcome, prediction_accuracy
from repro.evaluation.plot import plot_tradeoff
from repro.evaluation.report import format_table
from repro.evaluation.tradeoff import evaluate_design_space

N_REFERENCES = 60_000
POLICIES = ("owner", "broadcast-if-shared", "group", "owner-group",
            "sticky-spatial", "oracle")


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "oltp"
    trace = default_corpus().trace(workload, N_REFERENCES)
    print(f"{workload}: {len(trace)} misses\n")

    rows = []
    for policy in POLICIES:
        report = prediction_accuracy(trace, policy)
        rows.append(
            (
                policy,
                f"{report.coverage_pct:.1f}%",
                f"{report.precision_pct:.1f}%",
                f"{report.outcome_pct(PredictionOutcome.EXACT):.1f}%",
                f"{report.outcome_pct(PredictionOutcome.UNDER):.1f}%",
                f"{report.outcome_pct(PredictionOutcome.OVER):.1f}%",
            )
        )
    print("== Destination-set prediction anatomy ==")
    print(
        format_table(
            ("policy", "coverage", "precision", "exact", "under", "over"),
            rows,
        )
    )

    print("\n== ... and where that puts them on the Figure 5 plane ==\n")
    points = evaluate_design_space(trace, predictors=POLICIES[:-2])
    print(plot_tradeoff(points))
    print(
        "\nLow coverage shows up as indirections (retries); low"
        "\nprecision shows up as request messages per miss."
    )


if __name__ == "__main__":
    main()
