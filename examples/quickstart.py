#!/usr/bin/env python
"""Quickstart: the latency/bandwidth tradeoff in one page.

Generates a (small) OLTP coherence trace, evaluates the two baseline
protocols and the paper's four destination-set predictors on it, and
prints each configuration's position on the latency/bandwidth plane —
one panel of the paper's Figure 5.

Run:  python examples/quickstart.py
"""

from repro import PredictorConfig, default_corpus, evaluate_design_space
from repro.evaluation.report import render_tradeoff

N_REFERENCES = 60_000  # ~35k misses; raise for tighter numbers


def main() -> None:
    print("Collecting an OLTP coherence-request trace ...")
    trace = default_corpus().trace("oltp", N_REFERENCES)
    print(f"  {len(trace)} L2 misses from {N_REFERENCES} references\n")

    print("Evaluating protocols (8192-entry, 1024B-macroblock predictors):")
    points = evaluate_design_space(
        trace,
        predictors=("owner", "broadcast-if-shared", "group", "owner-group"),
        predictor_config=PredictorConfig(),  # the paper's standout config
    )
    print(render_tradeoff(points))
    print(
        "\nReading the table: snooping never indirects but broadcasts to"
        "\nall 15 other nodes; the directory uses ~2 request messages per"
        "\nmiss but indirects most sharing misses; the predictors trade"
        "\nbetween those endpoints, as in the paper's Figure 5."
    )


if __name__ == "__main__":
    main()
