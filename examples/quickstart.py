#!/usr/bin/env python
"""Quickstart: the latency/bandwidth tradeoff in one page.

Declares a small OLTP experiment with :class:`ExperimentSpec`, runs it
through the unified experiment runner (baseline protocols plus the
paper's four destination-set predictors), and prints each
configuration's position on the latency/bandwidth plane — one panel of
the paper's Figure 5.

The same spec can be saved as JSON and re-run in parallel from the
command line:  ``repro sweep spec.json --jobs 4``.

Run:  python examples/quickstart.py
"""

from repro.experiment import ExperimentSpec, run_experiment

N_REFERENCES = 60_000  # ~35k misses; raise for tighter numbers


def main() -> None:
    spec = ExperimentSpec(
        name="quickstart",
        kind="tradeoff",
        workloads=("oltp",),
        n_references=N_REFERENCES,
        # The paper's four policies under the standout predictor
        # configuration (8192 entries, 1024 B macroblocks) — the
        # spec's defaults.
    )
    print("Spec (save this as JSON and `repro sweep` it):")
    print(spec.to_json())

    print("\nEvaluating protocols ...")
    results = run_experiment(spec)
    print(results.table())
    print(
        "\nReading the table: snooping never indirects but broadcasts to"
        "\nall 15 other nodes; the directory uses ~2 request messages per"
        "\nmiss but indirects most sharing misses; the predictors trade"
        "\nbetween those endpoints, as in the paper's Figure 5."
    )


if __name__ == "__main__":
    main()
