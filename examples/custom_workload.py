#!/usr/bin/env python
"""Building a custom workload model from the sharing-pattern library.

Shows the extension path a downstream user takes to study their own
application's sharing behaviour: compose regions (private heaps, a
migratory lock, one producer-consumer ring) into a WorkloadModel
subclass, collect a trace through the cache pipeline, and evaluate
the predictors on it.

Run:  python examples/custom_workload.py
"""

from repro import PredictorConfig, evaluate_design_space
from repro.evaluation.report import render_tradeoff
from repro.workloads.base import PaperProperties, WorkloadModel
from repro.workloads.patterns import (
    MigratoryRegion,
    PrivateRegion,
    ProducerConsumerRegion,
)

KB = 1024
MB = 1024 * KB


class PipelineServerWorkload(WorkloadModel):
    """A staged server: each stage hands requests to the next stage.

    Stage i (processor i) produces into a ring buffer consumed by
    stage i+1; a global scheduler lock migrates among all stages; each
    stage keeps a private scratch heap.
    """

    name = "pipeline-server"
    description = "Staged pipeline server with ring-buffer handoffs"
    paper = PaperProperties(  # no paper row: targets are aspirational
        footprint_mb=32,
        macroblock_footprint_mb=48,
        static_miss_pcs=500,
        total_misses_millions=1,
        misses_per_kilo_instr=4.0,
        directory_indirection_pct=70,
    )
    instructions_per_reference = 60

    def _build(self, alloc):
        n = self.config.n_processors
        block = self.config.block_size
        regions = []
        for node in range(n):
            blocks = self.scaled_blocks(1 * MB)
            regions.append(
                (
                    PrivateRegion(
                        base=alloc.allocate(blocks * block),
                        n_blocks=blocks,
                        block_size=block,
                        owner=node,
                        pc_base=alloc.allocate_pc_range(),
                        streaming_fraction=0.2,
                    ),
                    0.4,
                )
            )
            blocks = self.scaled_blocks(512 * KB)
            regions.append(
                (
                    ProducerConsumerRegion(
                        base=alloc.allocate(blocks * block),
                        n_blocks=blocks,
                        block_size=block,
                        producer=node,
                        consumers=[(node + 1) % n],
                        pc_base=alloc.allocate_pc_range(),
                    ),
                    0.45,
                )
            )
        regions.append(
            (
                MigratoryRegion(
                    base=alloc.allocate(2 * block),
                    n_blocks=2,
                    block_size=block,
                    pool=range(n),
                    pc_base=alloc.allocate_pc_range(),
                ),
                0.15,
            )
        )
        return regions


def main() -> None:
    model = PipelineServerWorkload(seed=11)
    print(f"Collecting {model.name} ({model.description}) ...")
    result = model.collect(50_000)
    trace = result.trace
    print(
        f"  {len(trace)} misses, "
        f"{result.misses_per_kilo_instruction:.1f} misses/1k instructions\n"
    )
    points = evaluate_design_space(
        trace,
        predictors=("owner", "group", "owner-group"),
        predictor_config=PredictorConfig(),
    )
    print(render_tradeoff(points))
    print(
        "\nThe stage-to-stage handoffs are pairwise, so Owner alone "
        "already removes most indirections; Group catches the "
        "scheduler lock's wider sharing set."
    )


if __name__ == "__main__":
    main()
