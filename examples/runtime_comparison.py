#!/usr/bin/env python
"""Execution-driven runtime comparison (the paper's Figures 7 and 8).

Runs the timing simulator for the baseline protocols and the four
predictors on one workload, under both the simple (in-order blocking)
and detailed (multiple-outstanding-miss) processor models, and prints
normalized runtime vs normalized traffic per miss.

Run:  python examples/runtime_comparison.py [workload]
"""

import sys

from repro import default_corpus
from repro.evaluation.report import render_runtime
from repro.evaluation.runtime import evaluate_runtime

N_REFERENCES = 60_000


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "apache"
    trace = default_corpus().trace(workload, N_REFERENCES)
    print(f"{workload}: {len(trace)} misses\n")

    for model in ("simple", "detailed"):
        print(f"== {model} processor model "
              f"({'Figure 7' if model == 'simple' else 'Figure 8'}) ==")
        points = evaluate_runtime(trace, processor_model=model)
        print(render_runtime(points))
        snooping = next(
            p for p in points if p.label == "broadcast-snooping"
        )
        best = min(
            (p for p in points if p.label not in
             ("broadcast-snooping", "directory")),
            key=lambda p: p.normalized_runtime,
        )
        share = 100.0 * snooping.normalized_runtime / best.normalized_runtime
        print(
            f"   best predictor ({best.label}) reaches {share:.0f}% of "
            f"snooping performance at {best.normalized_traffic_per_miss:.0f}%"
            f" of snooping traffic\n"
        )


if __name__ == "__main__":
    main()
